"""The `imp` language frontend (our replacement for C2fsm).

`imp` is a small imperative language with polynomial integer arithmetic,
``while``/``if`` control flow, bounded nondeterministic assignments and
branches, ``assume`` statements, ``tick(e)`` cost statements, and
optional ``invariant(...)`` loop annotations.  Programs are parsed to an
AST, checked, and lowered to the transition systems of :mod:`repro.ts`.

Typical use::

    from repro.lang import load_program
    lowered = load_program('''
        proc count(n) {
            assume(1 <= n && n <= 100);
            var i = 0;
            while (i < n) { tick(1); i = i + 1; }
        }
    ''')
    system = lowered.system
"""

from repro.lang.lexer import tokenize, Token
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.lang.lower import LoweredProgram, lower_program
from repro.lang.typecheck import check_program


def load_program(source: str, name: str | None = None) -> LoweredProgram:
    """Parse, check and lower an `imp` program in one call.

    ``source`` may be program text or a path ending in ``.imp``.
    ``name`` overrides the procedure name as the system name.
    """
    if source.endswith(".imp") and "\n" not in source:
        with open(source) as handle:
            source = handle.read()
    program = parse_program(source)
    check_program(program)
    return lower_program(program, name=name)


__all__ = [
    "Token",
    "tokenize",
    "Program",
    "parse_program",
    "check_program",
    "LoweredProgram",
    "lower_program",
    "load_program",
]
