"""Lowering of `imp` ASTs to transition systems.

The lowering is a forward symbolic walk that keeps a *frontier* of
partially-built transitions (source location, guard conjunction, pending
updates).  Straight-line statements compose into the pending updates, so
the generated systems have one location per control point (loop heads,
branch joins that cannot be composed), matching the compact systems in
the paper's Appendix A rather than one location per statement.

Composition rules:

- an assignment ``x = e`` substitutes the pending updates into ``e``;
- reading a variable with a pending *nondeterministic* update forces the
  frontier to materialize a location first (the value must be fixed by a
  transition before it can be observed);
- conditions are conjoined into guards after substituting pending
  updates; if that would make a guard non-affine, the frontier likewise
  materializes first;
- leading ``assume`` statements become Θ0 (the set of initial
  valuations), exactly like the ``assume`` in the paper's Fig. 1;
- declared variables are zero-initialized, recorded as Θ0 equalities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoweringError, PolynomialError, TypecheckError
from repro.lang.ast_nodes import (
    Assign,
    Assume,
    BoolLit,
    Condition,
    If,
    InvariantHint,
    NondetAssign,
    Program,
    Skip,
    Star,
    Statement,
    Tick,
    VarDecl,
    While,
    condition_to_dnf,
)
from repro.poly.polynomial import Polynomial
from repro.ts.guards import LinIneq
from repro.ts.system import (
    COST_VAR,
    Location,
    NondetUpdate,
    Transition,
    TransitionSystem,
    UpdateExpr,
)
from repro.ts.validate import validate_system


@dataclass
class LoweredProgram:
    """The result of lowering: the system plus frontend metadata."""

    program: Program
    system: TransitionSystem
    invariant_hints: dict[str, tuple[LinIneq, ...]] = field(default_factory=dict)

    @property
    def params(self) -> list[str]:
        """The procedure parameters (the analysis inputs)."""
        return list(self.program.params)


@dataclass
class _Edge:
    """A partially-built transition out of ``source``."""

    source: Location
    guard: tuple[LinIneq, ...]
    updates: dict[str, UpdateExpr]

    def polynomial_updates(self) -> dict[str, Polynomial]:
        """The pending updates that are polynomials (for substitution)."""
        return {
            var: up for var, up in self.updates.items()
            if isinstance(up, Polynomial)
        }

    def nondet_vars(self) -> set[str]:
        """Variables with a pending nondeterministic update."""
        return {
            var for var, up in self.updates.items()
            if isinstance(up, NondetUpdate)
        }


class _Lowerer:
    def __init__(self, program: Program, name: str | None):
        self.program = program
        self.name = name or program.name
        self.locations: list[Location] = []
        self.transitions: list[Transition] = []
        self.init_constraint: list[LinIneq] = []
        self.invariant_hints: dict[str, tuple[LinIneq, ...]] = {}
        self.variables: list[str] = list(program.params)
        self._counter = 0
        self._transition_counter = 0

    # -- location / transition helpers ------------------------------------

    def _fresh_location(self) -> Location:
        location = Location(f"l{self._counter}")
        self._counter += 1
        self.locations.append(location)
        return location

    def _terminal(self) -> Location:
        location = Location("l_out")
        self.locations.append(location)
        return location

    def _emit(self, edge: _Edge, target: Location) -> None:
        name = f"t{self._transition_counter}"
        self._transition_counter += 1
        self.transitions.append(
            Transition(edge.source, target, edge.guard, dict(edge.updates), name)
        )

    def _materialize(self, frontier: list[_Edge]) -> list[_Edge]:
        """Flush all pending edges into a fresh location."""
        if not frontier:
            return []
        if (len(frontier) == 1 and not frontier[0].guard
                and not frontier[0].updates):
            return frontier
        target = self._fresh_location()
        for edge in frontier:
            self._emit(edge, target)
        return [_Edge(target, (), {})]

    # -- statement composition -----------------------------------------------

    def _substitute(self, edge: _Edge, expr: Polynomial,
                    line: int) -> Polynomial | None:
        """Read ``expr`` through the pending updates; ``None`` signals
        that materialization is required (a nondet variable is read)."""
        if expr.variables & edge.nondet_vars():
            return None
        return expr.substitute(edge.polynomial_updates())

    def _compose_into_frontier(self, frontier: list[_Edge], statement: Statement,
                               apply) -> list[_Edge]:
        """Apply a per-edge composition, materializing on demand."""
        result: list[_Edge] = []
        materialized: list[_Edge] | None = None
        for edge in frontier:
            new_edge = apply(edge)
            if new_edge is None:
                # This edge cannot absorb the statement: flush everything
                # and retry on the merged location (simplest sound rule).
                materialized = self._materialize(frontier)
                break
            result.append(new_edge)
        if materialized is not None:
            return [
                composed
                for edge in materialized
                for composed in [apply(edge)]
                if composed is not None
            ] or self._fail(statement)
        return result

    def _fail(self, statement: Statement):
        raise LoweringError(
            f"cannot lower statement {statement!r}", statement.line
        )

    # -- statements ----------------------------------------------------------

    def lower_block(self, statements: list[Statement],
                    frontier: list[_Edge]) -> list[_Edge]:
        for statement in statements:
            frontier = self.lower_statement(statement, frontier)
        return frontier

    def lower_statement(self, statement: Statement,
                        frontier: list[_Edge]) -> list[_Edge]:
        if not frontier:
            return []  # unreachable code
        if isinstance(statement, Skip):
            return frontier
        if isinstance(statement, VarDecl):
            init = statement.init
            if init is None:
                init = Polynomial.constant(0)
            return self._lower_assign(statement.name, init, statement, frontier)
        if isinstance(statement, Assign):
            return self._lower_assign(statement.name, statement.expr,
                                      statement, frontier)
        if isinstance(statement, NondetAssign):
            return self._lower_nondet_assign(statement, frontier)
        if isinstance(statement, Tick):
            return self._lower_tick(statement, frontier)
        if isinstance(statement, Assume):
            return self._conjoin_condition(frontier, statement.cond,
                                           statement.line)
        if isinstance(statement, InvariantHint):
            # Hints are consumed by the enclosing While; a hint reaching
            # here was validated to be loop-leading, so this is a bug.
            raise LoweringError("orphan invariant(...)", statement.line)
        if isinstance(statement, If):
            return self._lower_if(statement, frontier)
        if isinstance(statement, While):
            return self._lower_while(statement, frontier)
        raise LoweringError(f"unknown statement {statement!r}", statement.line)

    def _lower_assign(self, name: str, expr: Polynomial, statement: Statement,
                      frontier: list[_Edge]) -> list[_Edge]:
        def apply(edge: _Edge) -> _Edge | None:
            substituted = self._substitute(edge, expr, statement.line)
            if substituted is None:
                return None
            updates = dict(edge.updates)
            updates[name] = substituted
            return _Edge(edge.source, edge.guard, updates)

        return self._compose_into_frontier(frontier, statement, apply)

    def _lower_nondet_assign(self, statement: NondetAssign,
                             frontier: list[_Edge]) -> list[_Edge]:
        def apply(edge: _Edge) -> _Edge | None:
            bounds: list[Polynomial | None] = []
            for bound in (statement.lower, statement.upper):
                if bound is None:
                    bounds.append(None)
                    continue
                substituted = self._substitute(edge, bound, statement.line)
                if substituted is None or not substituted.is_affine():
                    return None
                bounds.append(substituted)
            updates = dict(edge.updates)
            updates[statement.name] = NondetUpdate(bounds[0], bounds[1])
            return _Edge(edge.source, edge.guard, updates)

        return self._compose_into_frontier(frontier, statement, apply)

    def _lower_tick(self, statement: Tick,
                    frontier: list[_Edge]) -> list[_Edge]:
        cost = Polynomial.variable(COST_VAR)

        def apply(edge: _Edge) -> _Edge | None:
            substituted = self._substitute(edge, statement.expr, statement.line)
            if substituted is None:
                return None
            updates = dict(edge.updates)
            current = updates.get(COST_VAR, cost)
            assert isinstance(current, Polynomial)
            updates[COST_VAR] = current + substituted
            return _Edge(edge.source, edge.guard, updates)

        return self._compose_into_frontier(frontier, statement, apply)

    def _conjoin_condition(self, frontier: list[_Edge], cond: Condition,
                           line: int) -> list[_Edge]:
        """Constrain the frontier to states satisfying ``cond``."""
        if isinstance(cond, Star):
            return frontier
        try:
            dnf = condition_to_dnf(cond)
        except TypecheckError as error:
            raise LoweringError(str(error), line) from error
        result: list[_Edge] = []
        for edge in frontier:
            conjoined = self._conjoin_edge(edge, dnf)
            if conjoined is None:
                # Substitution failed somewhere: materialize everything
                # and conjoin on the fresh location (no pending updates,
                # so conjoining cannot fail again).
                merged = self._materialize(frontier)
                return [
                    _Edge(e.source, e.guard + disjunct, dict(e.updates))
                    for e in merged
                    for disjunct in dnf
                ]
            result.extend(conjoined)
        return result

    def _conjoin_edge(self, edge: _Edge,
                      dnf: list[tuple[LinIneq, ...]]) -> list[_Edge] | None:
        nondet_vars = edge.nondet_vars()
        poly_updates = edge.polynomial_updates()
        edges: list[_Edge] = []
        for disjunct in dnf:
            guards: list[LinIneq] = list(edge.guard)
            for ineq in disjunct:
                if ineq.variables & nondet_vars:
                    return None
                try:
                    guards.append(ineq.substitute(poly_updates))
                except PolynomialError:
                    return None
            edges.append(_Edge(edge.source, tuple(guards), dict(edge.updates)))
        return edges

    def _lower_if(self, statement: If, frontier: list[_Edge]) -> list[_Edge]:
        if isinstance(statement.cond, Star):
            then_frontier = [
                _Edge(e.source, e.guard, dict(e.updates)) for e in frontier
            ]
            else_frontier = [
                _Edge(e.source, e.guard, dict(e.updates)) for e in frontier
            ]
        else:
            # Both branch guards must be attached to the *same* source
            # states: if either needs materialization (the condition
            # reads a pending nondet update or substitution turns
            # non-affine), materialize once and share the location, so
            # the branch point stays a single location with exclusive
            # guards rather than two pre-split copies.
            try:
                dnf_then = condition_to_dnf(statement.cond)
                dnf_else = condition_to_dnf(statement.cond.negate())
            except TypecheckError as error:
                raise LoweringError(str(error), statement.line) from error
            needs_materialization = any(
                self._conjoin_edge(edge, dnf_then) is None
                or self._conjoin_edge(edge, dnf_else) is None
                for edge in frontier
            )
            if needs_materialization:
                frontier = self._materialize(frontier)
            then_frontier = self._conjoin_condition(
                frontier, statement.cond, statement.line
            )
            else_frontier = self._conjoin_condition(
                frontier, statement.cond.negate(), statement.line
            )
        then_exit = self.lower_block(statement.then_body, then_frontier)
        else_exit = self.lower_block(statement.else_body, else_frontier)
        return then_exit + else_exit

    def _lower_while(self, statement: While,
                     frontier: list[_Edge]) -> list[_Edge]:
        # Loop heads always materialize: the head is the target of the
        # back edges and carries the invariant annotations.
        merged = self._materialize(frontier)
        if not merged:
            return []
        if merged[0].source in {t.source for t in self.transitions} or \
                merged[0].guard or merged[0].updates:
            # The merged edge reuses an existing location that already
            # has outgoing transitions; give the loop head its own
            # location to keep back edges unambiguous.
            head = self._fresh_location()
            for edge in merged:
                self._emit(edge, head)
        else:
            head = merged[0].source

        body_statements = list(statement.body)
        hints: list[LinIneq] = []
        while body_statements and isinstance(body_statements[0], InvariantHint):
            hint = body_statements.pop(0)
            try:
                dnf = condition_to_dnf(hint.cond)
            except TypecheckError as error:
                raise LoweringError(str(error), hint.line) from error
            if len(dnf) != 1:
                raise LoweringError(
                    "invariant(...) must be a conjunction", hint.line
                )
            hints.extend(dnf[0])
        if hints:
            existing = self.invariant_hints.get(head.name, ())
            self.invariant_hints[head.name] = existing + tuple(hints)

        if isinstance(statement.cond, Star):
            enter_frontier = [_Edge(head, (), {})]
            exit_frontier = [_Edge(head, (), {})]
        else:
            head_edge = [_Edge(head, (), {})]
            enter_frontier = self._conjoin_condition(
                head_edge, statement.cond, statement.line
            )
            exit_frontier = self._conjoin_condition(
                [_Edge(head, (), {})], statement.cond.negate(), statement.line
            )

        body_exit = self.lower_block(body_statements, enter_frontier)
        for edge in body_exit:
            self._emit(edge, head)
        return exit_frontier

    # -- program -----------------------------------------------------------------

    def lower(self) -> LoweredProgram:
        entry = self._fresh_location()
        frontier = [_Edge(entry, (), {})]

        # Leading assumes define Θ0 when they are pure conjunctions.
        body = list(self.program.body)
        while body and isinstance(body[0], (Assume, Skip)):
            statement = body.pop(0)
            if isinstance(statement, Skip):
                continue
            try:
                dnf = condition_to_dnf(statement.cond)
            except TypecheckError as error:
                raise LoweringError(str(error), statement.line) from error
            if len(dnf) != 1:
                # A disjunctive assume cannot be part of Θ0 (which the
                # paper requires to be a conjunction): keep it as guards.
                frontier = self._conjoin_condition(
                    frontier, statement.cond, statement.line
                )
                break
            self.init_constraint.extend(dnf[0])

        # Collect declared variables (they are zero-initialized, which
        # Θ0 records so the analysis knows their initial values).
        declared = _declared_variables(self.program.body)
        for var in declared:
            self.variables.append(var)
            zero = Polynomial.variable(var)
            self.init_constraint.append(LinIneq.geq(zero, 0))
            self.init_constraint.append(LinIneq.leq(zero, 0))

        frontier = self.lower_block(body, frontier)
        terminal = self._terminal()
        for edge in frontier:
            self._emit(edge, terminal)

        system = TransitionSystem(
            name=self.name,
            variables=self.variables + [COST_VAR],
            locations=self.locations,
            transitions=self.transitions,
            initial_location=entry,
            terminal_location=terminal,
            init_constraint=self.init_constraint,
        )
        validate_system(system)
        return LoweredProgram(self.program, system, self.invariant_hints)


def _declared_variables(statements: list[Statement]) -> list[str]:
    declared: list[str] = []
    for statement in statements:
        if isinstance(statement, VarDecl):
            declared.append(statement.name)
        elif isinstance(statement, If):
            declared.extend(_declared_variables(statement.then_body))
            declared.extend(_declared_variables(statement.else_body))
        elif isinstance(statement, While):
            declared.extend(_declared_variables(statement.body))
    return declared


def lower_program(program: Program, name: str | None = None) -> LoweredProgram:
    """Lower a checked `imp` AST to a transition system."""
    return _Lowerer(program, name).lower()
