"""AST for the `imp` language.

Arithmetic expressions are represented directly as
:class:`~repro.poly.polynomial.Polynomial` (the parser folds them);
boolean conditions keep a small AST so that negation and DNF conversion
can happen during lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TypecheckError
from repro.poly.polynomial import Polynomial
from repro.ts.guards import LinIneq


# -- boolean conditions -----------------------------------------------------


class Condition:
    """Base class of condition nodes."""

    def negate(self) -> "Condition":
        """Logical negation (pushed inward lazily via De Morgan)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Condition):
    """``lhs op rhs`` with ``op`` one of < <= > >= == !=."""

    op: str
    lhs: Polynomial
    rhs: Polynomial

    _NEGATION = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}

    def negate(self) -> "Comparison":
        return Comparison(self._NEGATION[self.op], self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class BoolAnd(Condition):
    """Conjunction."""

    left: Condition
    right: Condition

    def negate(self) -> Condition:
        return BoolOr(self.left.negate(), self.right.negate())

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class BoolOr(Condition):
    """Disjunction."""

    left: Condition
    right: Condition

    def negate(self) -> Condition:
        return BoolAnd(self.left.negate(), self.right.negate())

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


@dataclass(frozen=True)
class BoolLit(Condition):
    """``true`` or ``false``."""

    value: bool

    def negate(self) -> "BoolLit":
        return BoolLit(not self.value)

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Star(Condition):
    """The nondeterministic condition ``*`` (both branches possible)."""

    def negate(self) -> "Star":
        return Star()

    def __str__(self) -> str:
        return "*"


def condition_to_dnf(cond: Condition) -> list[tuple[LinIneq, ...]]:
    """Convert a (star-free) condition to a list of conjunctions of
    affine inequalities — the guards of the parallel transitions.

    ``false`` yields the empty list; ``true`` yields one empty
    conjunction.  Raises :class:`TypecheckError` on non-affine
    comparisons or on ``*`` (callers handle ``*`` separately).
    """
    if isinstance(cond, Star):
        raise TypecheckError("'*' cannot be combined with boolean operators")
    if isinstance(cond, BoolLit):
        return [()] if cond.value else []
    if isinstance(cond, Comparison):
        return _comparison_to_dnf(cond)
    if isinstance(cond, BoolAnd):
        result: list[tuple[LinIneq, ...]] = []
        for left in condition_to_dnf(cond.left):
            for right in condition_to_dnf(cond.right):
                result.append(left + right)
        return result
    if isinstance(cond, BoolOr):
        return condition_to_dnf(cond.left) + condition_to_dnf(cond.right)
    raise TypecheckError(f"unsupported condition {cond!r}")


def _comparison_to_dnf(cmp: Comparison) -> list[tuple[LinIneq, ...]]:
    difference = cmp.lhs - cmp.rhs
    if not difference.is_affine():
        raise TypecheckError(
            f"guard must be affine (paper assumption 2): {cmp} "
            "(assign the non-affine part to a temporary variable first)"
        )
    if cmp.op == "<":
        return [(LinIneq.less_than(cmp.lhs, cmp.rhs),)]
    if cmp.op == "<=":
        return [(LinIneq.leq(cmp.lhs, cmp.rhs),)]
    if cmp.op == ">":
        return [(LinIneq.greater_than(cmp.lhs, cmp.rhs),)]
    if cmp.op == ">=":
        return [(LinIneq.geq(cmp.lhs, cmp.rhs),)]
    if cmp.op == "==":
        return [LinIneq.equals(cmp.lhs, cmp.rhs)]
    if cmp.op == "!=":
        return [
            (LinIneq.less_than(cmp.lhs, cmp.rhs),),
            (LinIneq.greater_than(cmp.lhs, cmp.rhs),),
        ]
    raise TypecheckError(f"unknown comparison operator {cmp.op!r}")


# -- statements -------------------------------------------------------------


class Statement:
    """Base class of statement nodes; carries a source line."""

    line: int = 0


@dataclass
class VarDecl(Statement):
    """``var x;`` (zero-initialized) or ``var x = e;``."""

    name: str
    init: Polynomial | None
    line: int = 0


@dataclass
class Assign(Statement):
    """``x = e;``."""

    name: str
    expr: Polynomial
    line: int = 0


@dataclass
class NondetAssign(Statement):
    """``x = nondet(lo, hi);`` or unbounded ``x = nondet();``."""

    name: str
    lower: Polynomial | None
    upper: Polynomial | None
    line: int = 0


@dataclass
class Assume(Statement):
    """``assume(cond);`` — blocks executions violating ``cond``."""

    cond: Condition
    line: int = 0


@dataclass
class Tick(Statement):
    """``tick(e);`` — increments ``cost`` by ``e`` (may be negative)."""

    expr: Polynomial
    line: int = 0


@dataclass
class Skip(Statement):
    """``skip;`` — no effect."""

    line: int = 0


@dataclass
class InvariantHint(Statement):
    """``invariant(cond);`` — an annotation strengthening the generated
    invariant at the innermost enclosing loop head (conjunction only)."""

    cond: Condition
    line: int = 0


@dataclass
class If(Statement):
    """``if (cond) {...} else {...}`` (else optional)."""

    cond: Condition
    then_body: list[Statement]
    else_body: list[Statement]
    line: int = 0


@dataclass
class While(Statement):
    """``while (cond) {...}``."""

    cond: Condition
    body: list[Statement]
    line: int = 0


@dataclass
class Program:
    """A single `imp` procedure."""

    name: str
    params: list[str]
    body: list[Statement]
    source: str = field(default="", repr=False)
