"""Semantic checks for `imp` programs.

Checks performed before lowering:

- every referenced variable is a parameter or previously declared;
- no variable is declared twice and no parameter is shadowed;
- the reserved name ``cost`` is never declared, assigned or read
  (``tick`` is the only way to incur cost);
- nondet bounds are affine;
- ``invariant(...)`` annotations appear only at the start of a loop body
  and are plain conjunctions of comparisons.
"""

from __future__ import annotations

from repro.errors import TypecheckError
from repro.lang.ast_nodes import (
    Assign,
    Assume,
    BoolAnd,
    BoolLit,
    BoolOr,
    Comparison,
    Condition,
    If,
    InvariantHint,
    NondetAssign,
    Program,
    Skip,
    Star,
    Statement,
    Tick,
    VarDecl,
    While,
)
from repro.poly.polynomial import Polynomial
from repro.ts.system import COST_VAR


def check_program(program: Program) -> None:
    """Raise :class:`TypecheckError` on the first violated rule."""
    scope: set[str] = set()
    for param in program.params:
        if param == COST_VAR:
            raise TypecheckError(f"parameter may not be named {COST_VAR!r}")
        if param in scope:
            raise TypecheckError(f"duplicate parameter {param!r}")
        scope.add(param)
    _check_block(program.body, scope, in_loop_prefix=False)


def _check_block(statements: list[Statement], scope: set[str],
                 in_loop_prefix: bool) -> None:
    prefix = in_loop_prefix
    for statement in statements:
        if not isinstance(statement, InvariantHint):
            prefix = False
        _check_statement(statement, scope, prefix)


def _check_statement(statement: Statement, scope: set[str],
                     in_loop_prefix: bool) -> None:
    line = statement.line
    if isinstance(statement, VarDecl):
        if statement.name == COST_VAR:
            raise TypecheckError(
                f"{COST_VAR!r} is reserved; use tick(e)", line
            )
        if statement.name in scope:
            raise TypecheckError(
                f"variable {statement.name!r} already declared", line
            )
        if statement.init is not None:
            _check_expr(statement.init, scope, line)
        scope.add(statement.name)
    elif isinstance(statement, Assign):
        _check_lvalue(statement.name, scope, line)
        _check_expr(statement.expr, scope, line)
    elif isinstance(statement, NondetAssign):
        _check_lvalue(statement.name, scope, line)
        for bound in (statement.lower, statement.upper):
            if bound is not None:
                _check_expr(bound, scope, line)
                if not bound.is_affine():
                    raise TypecheckError(
                        f"nondet bound must be affine: {bound}", line
                    )
    elif isinstance(statement, Assume):
        _check_condition(statement.cond, scope, line, allow_star=False)
    elif isinstance(statement, InvariantHint):
        if not in_loop_prefix:
            raise TypecheckError(
                "invariant(...) must appear at the start of a loop body", line
            )
        _check_condition(statement.cond, scope, line, allow_star=False)
        if _mentions_or(statement.cond):
            raise TypecheckError(
                "invariant(...) must be a conjunction of comparisons", line
            )
    elif isinstance(statement, Tick):
        _check_expr(statement.expr, scope, line)
    elif isinstance(statement, Skip):
        pass
    elif isinstance(statement, If):
        _check_condition(statement.cond, scope, line, allow_star=True)
        # Branch-local declarations stay visible afterwards (variables
        # are zero-initialized at entry), matching the flat variable
        # space of transition systems.
        _check_block(statement.then_body, scope, in_loop_prefix=False)
        _check_block(statement.else_body, scope, in_loop_prefix=False)
    elif isinstance(statement, While):
        _check_condition(statement.cond, scope, line, allow_star=True)
        _check_block(statement.body, scope, in_loop_prefix=True)
    else:
        raise TypecheckError(f"unknown statement {statement!r}", line)


def _check_lvalue(name: str, scope: set[str], line: int) -> None:
    if name == COST_VAR:
        raise TypecheckError(f"{COST_VAR!r} is reserved; use tick(e)", line)
    if name not in scope:
        raise TypecheckError(f"assignment to undeclared variable {name!r}", line)


def _check_expr(expr: Polynomial, scope: set[str], line: int) -> None:
    if COST_VAR in expr.variables:
        raise TypecheckError(f"{COST_VAR!r} may not be read", line)
    unknown = expr.variables - scope
    if unknown:
        raise TypecheckError(f"undeclared variables {sorted(unknown)}", line)


def _check_condition(cond: Condition, scope: set[str], line: int,
                     allow_star: bool) -> None:
    if isinstance(cond, Star):
        if not allow_star:
            raise TypecheckError("'*' is only allowed in if/while conditions", line)
        return
    if isinstance(cond, BoolLit):
        return
    if isinstance(cond, Comparison):
        _check_expr(cond.lhs, scope, line)
        _check_expr(cond.rhs, scope, line)
        if not (cond.lhs - cond.rhs).is_affine():
            raise TypecheckError(
                f"condition must be affine: {cond} "
                "(assign the non-affine part to a temporary first)",
                line,
            )
        return
    if isinstance(cond, (BoolAnd, BoolOr)):
        # '*' may not be combined with boolean operators.
        _check_condition(cond.left, scope, line, allow_star=False)
        _check_condition(cond.right, scope, line, allow_star=False)
        return
    raise TypecheckError(f"unknown condition {cond!r}", line)


def _mentions_or(cond: Condition) -> bool:
    if isinstance(cond, BoolOr):
        return True
    if isinstance(cond, BoolAnd):
        return _mentions_or(cond.left) or _mentions_or(cond.right)
    return False
