"""Lexer for the `imp` language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError

KEYWORDS = frozenset({
    "proc", "var", "while", "for", "if", "else", "assume", "tick", "skip",
    "nondet", "invariant", "true", "false",
})

# Multi-character operators must be listed before their prefixes.
OPERATORS = (
    "**", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "^", "<", ">", "=", "!",
    "(", ")", "{", "}", ";", ",",
)


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    kind: str  # "ident", "int", "keyword", "op", "eof"
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return self.text if self.kind != "eof" else "<eof>"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; comments start with ``#`` or ``//``."""
    tokens: list[Token] = []
    line = 1
    column = 1
    pos = 0
    length = len(source)

    while pos < length:
        char = source[pos]
        if char == "\n":
            pos += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            pos += 1
            column += 1
            continue
        if char == "#" or source.startswith("//", pos):
            while pos < length and source[pos] != "\n":
                pos += 1
            continue
        if char.isdigit():
            start = pos
            while pos < length and source[pos].isdigit():
                pos += 1
            text = source[start:pos]
            tokens.append(Token("int", text, line, column))
            column += len(text)
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, line, column))
                pos += len(op)
                column += len(op)
                break
        else:
            raise LexerError(f"unexpected character {char!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens
