"""Recursive-descent parser for the `imp` language.

Grammar (statements end with ``;``, blocks use braces)::

    program  := 'proc' ident '(' params? ')' block
    block    := '{' statement* '}'
    statement:= 'var' ident ('=' expr)? ';'
              | ident '=' 'nondet' '(' (expr ',' expr)? ')' ';'
              | ident '=' expr ';'
              | 'assume' '(' cond ')' ';'
              | 'invariant' '(' cond ')' ';'
              | 'tick' '(' expr ')' ';'
              | 'skip' ';'
              | 'if' '(' cond ')' block ('else' block)?
              | 'while' '(' cond ')' block
              | 'for' '(' ident '=' expr ';' cond ';' ident '=' expr ')' block
    cond     := disjunctions/conjunctions/negations of comparisons,
                'true', 'false', or the nondeterministic '*'
    expr     := polynomial integer arithmetic with + - * ^/**
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast_nodes import (
    Assign,
    Assume,
    BoolAnd,
    BoolLit,
    BoolOr,
    Comparison,
    Condition,
    If,
    InvariantHint,
    NondetAssign,
    Program,
    Skip,
    Star,
    Statement,
    Tick,
    VarDecl,
    While,
)
from repro.lang.lexer import Token, tokenize
from repro.poly.polynomial import Polynomial


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self._tokens = tokens
        self._pos = 0
        self._source = source

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise self._error(f"expected {text!r} but found {str(token)!r}", token)
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind != "ident":
            raise self._error(f"expected identifier, found {str(token)!r}", token)
        return token

    def _accept(self, text: str) -> bool:
        if self._peek().text == text and self._peek().kind != "eof":
            self._pos += 1
            return True
        return False

    # -- program -----------------------------------------------------------

    def parse_program(self) -> Program:
        self._expect("proc")
        name = self._expect_ident().text
        self._expect("(")
        params: list[str] = []
        if self._peek().text != ")":
            params.append(self._expect_ident().text)
            while self._accept(","):
                params.append(self._expect_ident().text)
        self._expect(")")
        body = self._parse_block()
        if self._peek().kind != "eof":
            raise self._error("trailing input after procedure body")
        return Program(name, params, body, source=self._source)

    def _parse_block(self) -> list[Statement]:
        self._expect("{")
        statements: list[Statement] = []
        while self._peek().text != "}":
            if self._peek().kind == "eof":
                raise self._error("unterminated block (missing '}')")
            parsed = self._parse_statement()
            if isinstance(parsed, list):  # desugared 'for'
                statements.extend(parsed)
            else:
                statements.append(parsed)
        self._expect("}")
        return statements

    # -- statements -----------------------------------------------------------

    def _parse_statement(self) -> "Statement | list[Statement]":
        token = self._peek()
        if token.text == "var":
            return self._parse_var_decl()
        if token.text == "assume":
            return self._parse_call_cond(Assume)
        if token.text == "invariant":
            return self._parse_call_cond(InvariantHint)
        if token.text == "tick":
            return self._parse_tick()
        if token.text == "skip":
            self._next()
            self._expect(";")
            return Skip(line=token.line)
        if token.text == "if":
            return self._parse_if()
        if token.text == "while":
            return self._parse_while()
        if token.text == "for":
            return self._parse_for()
        if token.kind == "ident":
            return self._parse_assignment()
        raise self._error(f"unexpected token {str(token)!r} at statement start", token)

    def _parse_var_decl(self) -> VarDecl:
        token = self._expect("var")
        name = self._expect_ident().text
        init: Polynomial | None = None
        if self._accept("="):
            init = self._parse_expr()
        self._expect(";")
        return VarDecl(name, init, line=token.line)

    def _parse_call_cond(self, node_type) -> Statement:
        token = self._next()  # 'assume' or 'invariant'
        self._expect("(")
        cond = self._parse_condition()
        self._expect(")")
        self._expect(";")
        return node_type(cond, line=token.line)

    def _parse_tick(self) -> Tick:
        token = self._expect("tick")
        self._expect("(")
        expr = self._parse_expr()
        self._expect(")")
        self._expect(";")
        return Tick(expr, line=token.line)

    def _parse_if(self) -> If:
        token = self._expect("if")
        self._expect("(")
        cond = self._parse_condition()
        self._expect(")")
        then_body = self._parse_block()
        else_body: list[Statement] = []
        if self._accept("else"):
            if self._peek().text == "if":
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return If(cond, then_body, else_body, line=token.line)

    def _parse_while(self) -> While:
        token = self._expect("while")
        self._expect("(")
        cond = self._parse_condition()
        self._expect(")")
        body = self._parse_block()
        return While(cond, body, line=token.line)

    def _parse_for(self) -> Statement:
        """``for (x = e; cond; x = e') { body }`` — sugar for an
        assignment followed by a while loop with the step appended.
        The init and step clauses must be plain assignments (possibly to
        an undeclared name in init, which then acts as ``var x = e``)."""
        token = self._expect("for")
        self._expect("(")
        init_name = self._expect_ident().text
        self._expect("=")
        init_expr = self._parse_expr()
        self._expect(";")
        cond = self._parse_condition()
        self._expect(";")
        step_name = self._expect_ident().text
        self._expect("=")
        step_expr = self._parse_expr()
        self._expect(")")
        body = self._parse_block()
        body.append(Assign(step_name, step_expr, line=token.line))
        loop = While(cond, body, line=token.line)
        # Desugar to [var x = e; while (cond) { body; step }].  The init
        # clause *declares* the loop variable, so the name must be fresh
        # (the typechecker rejects redeclarations).
        init = VarDecl(init_name, init_expr, line=token.line)
        return [init, loop]

    def _parse_assignment(self) -> Statement:
        name_token = self._expect_ident()
        self._expect("=")
        if self._peek().text == "nondet":
            self._next()
            self._expect("(")
            lower = upper = None
            if self._peek().text != ")":
                lower = self._parse_expr()
                self._expect(",")
                upper = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return NondetAssign(name_token.text, lower, upper,
                                line=name_token.line)
        expr = self._parse_expr()
        self._expect(";")
        return Assign(name_token.text, expr, line=name_token.line)

    # -- conditions --------------------------------------------------------------

    def _parse_condition(self) -> Condition:
        return self._parse_or()

    def _parse_or(self) -> Condition:
        left = self._parse_and()
        while self._accept("||"):
            left = BoolOr(left, self._parse_and())
        return left

    def _parse_and(self) -> Condition:
        left = self._parse_not()
        while self._accept("&&"):
            left = BoolAnd(left, self._parse_not())
        return left

    def _parse_not(self) -> Condition:
        if self._accept("!"):
            return self._parse_not().negate()
        return self._parse_cond_atom()

    def _parse_cond_atom(self) -> Condition:
        token = self._peek()
        if token.text == "*":
            self._next()
            return Star()
        if token.text == "true":
            self._next()
            return BoolLit(True)
        if token.text == "false":
            self._next()
            return BoolLit(False)
        if token.text == "(":
            # Ambiguity: '(' may open a boolean group or an arithmetic
            # parenthesis.  Try boolean first with backtracking.
            saved = self._pos
            self._next()
            try:
                inner = self._parse_condition()
                self._expect(")")
                return inner
            except ParseError:
                self._pos = saved
        return self._parse_comparison()

    def _parse_comparison(self) -> Comparison:
        lhs = self._parse_expr()
        token = self._next()
        if token.text not in ("<", "<=", ">", ">=", "==", "!="):
            raise self._error(
                f"expected comparison operator, found {str(token)!r}", token
            )
        rhs = self._parse_expr()
        return Comparison(token.text, lhs, rhs)

    # -- arithmetic expressions ------------------------------------------------

    def _parse_expr(self) -> Polynomial:
        result = self._parse_term()
        while self._peek().text in ("+", "-"):
            op = self._next().text
            rhs = self._parse_term()
            result = result + rhs if op == "+" else result - rhs
        return result

    def _parse_term(self) -> Polynomial:
        result = self._parse_factor()
        while self._peek().text == "*":
            # Don't confuse multiplication with a '*' condition: a '*'
            # followed by something that cannot start a factor is not
            # multiplication; inside expressions it always is.
            self._next()
            result = result * self._parse_factor()
        return result

    def _parse_factor(self) -> Polynomial:
        base = self._parse_primary()
        if self._peek().text in ("^", "**"):
            self._next()
            token = self._next()
            if token.kind != "int":
                raise self._error("exponent must be an integer literal", token)
            base = base ** int(token.text)
        return base

    def _parse_primary(self) -> Polynomial:
        token = self._next()
        if token.text == "(":
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if token.text == "-":
            return -self._parse_factor()
        if token.text == "+":
            return self._parse_factor()
        if token.kind == "int":
            return Polynomial.constant(int(token.text))
        if token.kind == "ident":
            return Polynomial.variable(token.text)
        raise self._error(f"unexpected token {str(token)!r} in expression", token)


def parse_program(source: str) -> Program:
    """Parse `imp` source text into a :class:`Program` AST."""
    return _Parser(tokenize(source), source).parse_program()
