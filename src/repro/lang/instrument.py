"""Automatic cost instrumentation of `imp` programs.

The paper's benchmarks follow a recipe: "we make it incur a cost of 1
for each loop iteration so that the total cost usage corresponds to the
loop bound" (§6).  This module mechanizes that recipe (and generalizes
it) as an AST transform, so un-instrumented programs can be analyzed
under standard cost models without hand-editing ``tick`` calls:

- ``LOOP_BOUND_MODEL`` — 1 per loop iteration (the paper's recipe);
- ``STEP_COUNT_MODEL`` — 1 per assignment and per branch (a crude
  run-time model);
- custom :class:`CostModel` instances for anything else.

The transform is purely syntactic and idempotent-friendly: existing
``tick`` statements are preserved.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.lang.ast_nodes import (
    Assign,
    If,
    NondetAssign,
    Program,
    Statement,
    Tick,
    VarDecl,
    While,
)
from repro.poly.polynomial import Polynomial


@dataclass(frozen=True)
class CostModel:
    """Per-construct costs charged by :func:`instrument`.

    Each field is the (integer) cost charged when the corresponding
    construct executes; 0 disables charging for that construct.
    """

    loop_iteration: int = 0
    assignment: int = 0
    branch: int = 0

    def __post_init__(self):
        if (self.loop_iteration, self.assignment, self.branch) == (0, 0, 0):
            raise ValueError("cost model charges nothing")


LOOP_BOUND_MODEL = CostModel(loop_iteration=1)
STEP_COUNT_MODEL = CostModel(loop_iteration=0, assignment=1, branch=1)


def instrument(program: Program, model: CostModel) -> Program:
    """A copy of ``program`` with ``tick`` statements inserted per
    ``model``.  The input AST is not modified."""
    clone = copy.deepcopy(program)
    clone.body = _instrument_block(clone.body, model)
    return clone


def _tick(amount: int, line: int) -> Tick:
    return Tick(Polynomial.constant(amount), line=line)


def _instrument_block(statements: list[Statement],
                      model: CostModel) -> list[Statement]:
    result: list[Statement] = []
    for statement in statements:
        if isinstance(statement, While):
            body = _instrument_block(statement.body, model)
            if model.loop_iteration:
                body.insert(0, _tick(model.loop_iteration, statement.line))
            statement.body = body
            result.append(statement)
        elif isinstance(statement, If):
            statement.then_body = _instrument_block(
                statement.then_body, model
            )
            statement.else_body = _instrument_block(
                statement.else_body, model
            )
            if model.branch:
                result.append(_tick(model.branch, statement.line))
            result.append(statement)
        elif isinstance(statement, (Assign, NondetAssign, VarDecl)):
            result.append(statement)
            if model.assignment:
                result.append(_tick(model.assignment, statement.line))
        else:
            result.append(statement)
    return result


def count_ticks(statements: list[Statement]) -> int:
    """Number of ``tick`` statements in a block (recursively); used by
    tests and by tooling that reports instrumentation density."""
    total = 0
    for statement in statements:
        if isinstance(statement, Tick):
            total += 1
        elif isinstance(statement, While):
            total += count_ticks(statement.body)
        elif isinstance(statement, If):
            total += count_ticks(statement.then_body)
            total += count_ticks(statement.else_body)
    return total
