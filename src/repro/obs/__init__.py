"""Observability layer: metrics, span tracing, structured logging.

Everything in this package is dependency-free, deliberately cheap when
disabled, and — the hard invariant — *never* feeds back into analysis
results: metric counters, trace spans, and log records are side
channels, stripped by :func:`repro.serve.shard.canonical_report` and
excluded from content-addressed job hashes, so canonical reports and
chosen rungs are byte-identical with observability on or off.

- :mod:`repro.obs.metrics` — in-process registry of counters, gauges
  and histograms with labeled series.  Snapshots are plain
  JSON-serializable dicts; workers attach a snapshot *delta* to each
  :class:`~repro.engine.jobs.JobResult` and the parent executor merges
  them, so one registry per process adds up to fleet-wide totals.
  Rendered as Prometheus text exposition by ``GET /metrics``.
- :mod:`repro.obs.trace` — span recorder emitting Chrome
  ``trace_event`` JSONL (load the file in Perfetto / chrome://tracing).
  Activated by ``--trace FILE`` (propagated to workers through the
  ``REPRO_TRACE`` environment variable); a disabled span is a no-op.
- :mod:`repro.obs.log` — stdlib-logging setup under the ``repro.*``
  namespace, driven by ``REPRO_LOG`` / ``--log-level``; silent unless
  asked, worker-safe (each process configures its own handler).
"""

from repro.obs.log import get_logger, setup_from_env, setup_logging
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import span, trace_active, trace_disable, trace_enable

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_logger",
    "get_registry",
    "setup_from_env",
    "setup_logging",
    "span",
    "trace_active",
    "trace_disable",
    "trace_enable",
]
