"""In-process metrics: counters, gauges, histograms; mergeable snapshots.

No third-party client library: the whole model is a registry of named
metrics, each holding labeled series keyed by a tuple of label values.
Three primitives cover the stack's needs:

- :class:`Counter` — monotone float/int totals (jobs run, cache hits);
- :class:`Gauge` — point-in-time values (cache bytes, in-flight
  requests), refreshed by the owner right before a scrape;
- :class:`Histogram` — fixed-bucket latency distributions.

The multi-process story is *snapshot merging*, not shared memory: a
worker process snapshots its registry before a job, runs the job,
and attaches :meth:`MetricsRegistry.diff` (counter/histogram deltas)
to the :class:`~repro.engine.jobs.JobResult` it sends back; the parent
executor folds each delta into its own registry with
:meth:`MetricsRegistry.merge`.  Deltas compose under addition, so
totals in the parent equal what a single-process run would count —
the property the soak test asserts.

Rendering follows the Prometheus text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` headers, ``name{label="value"} 1``
sample lines, histograms as cumulative ``_bucket`` / ``_sum`` /
``_count`` series.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

#: Schema tag carried by every snapshot so a future layout change can
#: be detected instead of silently mis-merged.
SNAPSHOT_VERSION = 1

#: Default histogram bucket upper bounds (seconds-flavoured, matching
#: the job/request latencies this stack observes).  The implicit
#: ``+Inf`` bucket is always appended.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Metric:
    """Base: one named metric holding labeled series under a lock."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...], lock: threading.Lock):
        self.name = name
        self.help_text = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._series: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _zero(self):
        return 0.0

    def series(self) -> dict[tuple[str, ...], Any]:
        with self._lock:
            return dict(self._series)


class Counter(_Metric):
    type_name = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)


class Gauge(_Metric):
    type_name = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)


class Histogram(_Metric):
    type_name = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...], lock: threading.Lock,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text, labelnames, lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs buckets")
        self.bounds: tuple[float, ...] = tuple(bounds)

    def _zero(self) -> dict[str, Any]:
        return {"buckets": [0] * (len(self.bounds) + 1),
                "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = self._series[key] = self._zero()
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            cell["buckets"][index] += 1
            cell["sum"] += value
            cell["count"] += 1

    def value(self, **labels) -> dict[str, Any]:
        key = self._key(labels)
        with self._lock:
            cell = self._series.get(key)
            return dict(cell) if cell else self._zero()

    def series(self) -> dict[tuple[str, ...], Any]:
        with self._lock:
            return {key: {"buckets": list(cell["buckets"]),
                          "sum": cell["sum"], "count": cell["count"]}
                    for key, cell in self._series.items()}


_METRIC_TYPES = {cls.type_name: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A process-local family of named metrics.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create and
    idempotent, so call sites just ask for the metric they need; a
    name reused with a different type or label set is a programming
    error and raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: tuple[str, ...], **extra):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, tuple(labelnames),
                             self._lock, **extra)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{metric.type_name}, not {cls.type_name}"
            )
        if metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}, not {tuple(labelnames)}"
            )
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text,
                                   tuple(labelnames))

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text,
                                   tuple(labelnames))

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   tuple(labelnames), buckets=buckets)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable copy of every series (label keys become
        lists so the snapshot survives a round-trip through JSON)."""
        metrics: dict[str, Any] = {}
        with self._lock:
            items = list(self._metrics.items())
        for name, metric in items:
            entry: dict[str, Any] = {
                "type": metric.type_name,
                "help": metric.help_text,
                "labelnames": list(metric.labelnames),
                "series": [[list(key), value]
                           for key, value in sorted(metric.series().items())],
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
            metrics[name] = entry
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def diff(self, before: dict[str, Any]) -> dict[str, Any]:
        """Delta snapshot: counters/histograms minus ``before``, gauges
        at their current value.  Empty series are dropped, so a worker
        that did nothing attaches ``{"metrics": {}}``-shaped noise-free
        deltas."""
        current = self.snapshot()
        base = {name: {tuple(k): v for k, v in entry.get("series", [])}
                for name, entry in before.get("metrics", {}).items()}
        out: dict[str, Any] = {}
        for name, entry in current["metrics"].items():
            prior = base.get(name, {})
            series = []
            for key_list, value in entry["series"]:
                key = tuple(key_list)
                if entry["type"] == "counter":
                    delta = value - prior.get(key, 0.0)
                    if delta:
                        series.append([key_list, delta])
                elif entry["type"] == "histogram":
                    zero = {"buckets": [0] * len(value["buckets"]),
                            "sum": 0.0, "count": 0}
                    prev = prior.get(key, zero)
                    buckets = [a - b for a, b in
                               zip(value["buckets"], prev["buckets"])]
                    count = value["count"] - prev["count"]
                    if count:
                        series.append([key_list, {
                            "buckets": buckets,
                            "sum": value["sum"] - prev["sum"],
                            "count": count,
                        }])
                else:  # gauge: last write wins, only if ever written
                    series.append([key_list, value])
            if series:
                slim = dict(entry)
                slim["series"] = series
                out[name] = slim
        return {"version": SNAPSHOT_VERSION, "metrics": out}

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a snapshot (or delta) into this registry: counters and
        histograms add, gauges take the snapshot's value."""
        version = snapshot.get("version", SNAPSHOT_VERSION)
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unknown metrics snapshot version {version!r}")
        for name, entry in snapshot.get("metrics", {}).items():
            cls = _METRIC_TYPES.get(entry.get("type"))
            if cls is None:
                continue
            labelnames = tuple(entry.get("labelnames", ()))
            if cls is Histogram:
                metric = self.histogram(name, entry.get("help", ""),
                                        labelnames,
                                        buckets=entry.get("bounds",
                                                          DEFAULT_BUCKETS))
            elif cls is Gauge:
                metric = self.gauge(name, entry.get("help", ""), labelnames)
            else:
                metric = self.counter(name, entry.get("help", ""), labelnames)
            for key_list, value in entry.get("series", []):
                labels = dict(zip(labelnames, key_list))
                if cls is Counter:
                    metric.inc(value, **labels)
                elif cls is Gauge:
                    metric.set(value, **labels)
                else:
                    key = metric._key(labels)
                    with self._lock:
                        cell = metric._series.get(key)
                        if cell is None:
                            cell = metric._series[key] = metric._zero()
                        for i, n in enumerate(value["buckets"]):
                            cell["buckets"][i] += n
                        cell["sum"] += value["sum"]
                        cell["count"] += value["count"]

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- exposition --------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every series."""
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            if metric.help_text:
                lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.type_name}")
            series = sorted(metric.series().items())
            if not series and not isinstance(metric, Histogram):
                continue
            for key, value in series:
                labels = ",".join(
                    f'{label}="{_escape_label(text)}"'
                    for label, text in zip(metric.labelnames, key)
                )
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                            tuple(metric.bounds) + (float("inf"),),
                            value["buckets"]):
                        cumulative += count
                        le = f'le="{_format_value(bound)}"'
                        tags = f"{labels},{le}" if labels else le
                        lines.append(
                            f"{name}_bucket{{{tags}}} {cumulative}")
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{name}_sum{suffix} "
                                 f"{_format_value(value['sum'])}")
                    lines.append(f"{name}_count{suffix} {value['count']}")
                else:
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"


#: The process-wide registry every component records into.  Workers get
#: their own copy (fresh on spawn, inherited-then-diffed on fork — the
#: delta protocol is correct either way).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
