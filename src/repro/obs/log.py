"""Structured stdlib logging for the ``repro.*`` component tree.

The stack stays silent by default — analyses print their reports, not
a log stream — and turns on diagnostics only when asked, either via
``REPRO_LOG=DEBUG`` in the environment or ``--log-level debug`` on the
CLI (which exports the env var so pool workers inherit it; each worker
process calls :func:`setup_from_env` and configures its own handler).

Components get loggers under one namespace root::

    log = get_logger("engine.scheduler")   # logging.Logger "repro.engine.scheduler"

so a single ``repro`` root handler (stderr, pid-tagged format) covers
everything, and ``logging``'s usual per-logger level machinery still
works for anyone embedding the library.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO

#: Environment variable carrying the log level name; the propagation
#: mechanism for worker processes, exactly like ``REPRO_TRACE``.
LOG_ENV = "REPRO_LOG"

#: Root of the component namespace.
ROOT = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s [%(process)d] %(name)s: %(message)s"

#: Marker attribute identifying the handler this module installed, so
#: repeated setup calls (parent, then fork-inherited worker) reconfigure
#: instead of stacking duplicate handlers.
_HANDLER_TAG = "_repro_obs_handler"

_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")


def get_logger(component: str) -> logging.Logger:
    """Logger for one component, e.g. ``get_logger("serve.server")``."""
    return logging.getLogger(f"{ROOT}.{component}" if component else ROOT)


def parse_level(level: str | int) -> int:
    """A level name (any case) or numeric level to its numeric value."""
    if isinstance(level, int):
        return level
    name = str(level).upper()
    if name not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r} (expected one of "
            f"{', '.join(l.lower() for l in _LEVELS)})"
        )
    return getattr(logging, name)


def setup_logging(level: str | int | None = None,
                  stream: IO[str] | None = None) -> bool:
    """Configure the ``repro`` root logger; returns True if enabled.

    ``level`` falls back to ``REPRO_LOG``; with neither set this is a
    no-op returning False, which keeps library users' logging alone.
    Idempotent: the single stderr handler is replaced, never stacked.
    """
    if level is None:
        level = os.environ.get(LOG_ENV) or None
    if level is None:
        return False
    numeric = parse_level(level)
    root = logging.getLogger(ROOT)
    root.setLevel(numeric)
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    return True


def setup_from_env() -> bool:
    """Worker-side entry point: honor ``REPRO_LOG`` if present."""
    return setup_logging(None)
