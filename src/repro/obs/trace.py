"""Span tracing to Chrome ``trace_event`` JSONL.

Each completed span becomes one JSON line — a complete event
(``"ph": "X"``) with microsecond wall-clock timestamp and duration —
appended to the trace file named by the ``REPRO_TRACE`` environment
variable.  A JSONL stream of such events is directly loadable in
Perfetto (ui.perfetto.dev) or chrome://tracing, which group spans by
``pid``/``tid`` into per-process / per-thread tracks.

Design constraints, in order:

- **zero cost when off**: :func:`span` checks one environment lookup
  and yields; nothing is imported lazily, no file is touched.
- **worker-safe**: activation travels through the environment, so
  spawned/forked pool workers inherit it; each process opens its own
  append-mode handle (guarded by pid, so a handle never crosses a
  fork) and writes whole lines, which the OS appends atomically enough
  for well-formed JSONL in practice.
- **never perturbs results**: spans only *read* job metadata (the
  content-addressed job key, rung names) and write to the side file.

Spans are keyed to content-addressed job hashes: the batch span wraps
discovery + execution, each pair/rung job span carries its
``job_key``, and the LP-solve span nests inside whichever job ran it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

#: Environment variable naming the trace output file.  Set by
#: ``--trace FILE`` (CLI) or :func:`trace_enable`; inherited by pool
#: worker processes, which is the whole propagation mechanism.
TRACE_ENV = "REPRO_TRACE"

_lock = threading.Lock()
_handle = None
_handle_path: str | None = None
_handle_pid: int | None = None


def trace_enable(path: str) -> None:
    """Turn tracing on for this process and its future children."""
    os.environ[TRACE_ENV] = str(path)


def trace_disable() -> None:
    """Turn tracing off and drop any open handle."""
    global _handle, _handle_path, _handle_pid
    os.environ.pop(TRACE_ENV, None)
    with _lock:
        if _handle is not None:
            try:
                _handle.close()
            except OSError:
                pass
        _handle = None
        _handle_path = None
        _handle_pid = None


def trace_active() -> bool:
    return bool(os.environ.get(TRACE_ENV))


def _emit(event: dict[str, Any]) -> None:
    global _handle, _handle_path, _handle_pid
    path = os.environ.get(TRACE_ENV)
    if not path:
        return
    line = json.dumps(event, separators=(",", ":")) + "\n"
    pid = os.getpid()
    with _lock:
        if _handle is None or _handle_path != path or _handle_pid != pid:
            if _handle is not None:
                try:
                    _handle.close()
                except OSError:
                    pass
            try:
                _handle = open(path, "a", encoding="utf-8")
            except OSError:
                _handle = None
                return
            _handle_path, _handle_pid = path, pid
        try:
            _handle.write(line)
            _handle.flush()
        except (OSError, ValueError):
            _handle = None


@contextmanager
def span(name: str, cat: str = "repro",
         args: dict[str, Any] | None = None) -> Iterator[None]:
    """Record the wrapped block as one complete trace event.

    No-op (one env lookup) when tracing is off.  The event is written
    when the block exits, including on exception — a failing job still
    shows up in the trace with its true duration.
    """
    if not os.environ.get(TRACE_ENV):
        yield
        return
    start_wall = time.time()
    start = time.perf_counter()
    try:
        yield
    finally:
        duration = time.perf_counter() - start
        _emit({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": int(start_wall * 1_000_000),
            "dur": max(1, int(duration * 1_000_000)),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "args": args or {},
        })


def instant(name: str, cat: str = "repro",
            args: dict[str, Any] | None = None) -> None:
    """Record a zero-duration marker (worker kill, cancellation...)."""
    if not os.environ.get(TRACE_ENV):
        return
    _emit({
        "name": name,
        "cat": cat,
        "ph": "i",
        "s": "p",
        "ts": int(time.time() * 1_000_000),
        "pid": os.getpid(),
        "tid": threading.get_ident() & 0xFFFFFFFF,
        "args": args or {},
    })
