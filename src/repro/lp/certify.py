"""Float warm-started, exactly certified LP solving (backend ``exact-warm``).

The solve ladder, in the style of iteratively-refined exact solvers
(QSopt_ex, SoPlex):

1. **Float stage** — solve the standard-form LP in floating point:
   through scipy's HiGHS when importable (its vertex solution is turned
   into a basis by a support crossover), otherwise with the revised
   simplex over floats.  Float answers are never trusted; they only
   nominate a candidate basis.
2. **Exact certification** — refactorize the candidate basis over
   ``Fraction``; check primal feasibility exactly (``B^{-1} b >= 0``,
   artificials at zero) and dual feasibility by exact pricing.  If both
   hold the float basis *is* the exact optimum: ``path = "certified"``,
   zero exact pivots.
3. **Exact resume** — primal feasible but not dual feasible: exact
   phase-2 pivoting resumes from the candidate basis
   (``path = "resumed"``), typically a handful of pivots.  Primal
   *infeasible* but exactly dual feasible: the dual simplex
   (:mod:`repro.lp.dual`) re-optimizes from the same basis
   (``path = "dual"``) — previously such bases were discarded and the
   solve started over from the artificial basis.
4. **Fallback** — an unusable basis (singular, neither feasibility) or
   a non-optimal float verdict falls back to the exact two-phase solve
   (``path = "fallback"``), so every answer is exact regardless of what
   floating point did.

All reported values are Fractions.  Optima are bit-identical to the
pure ``exact`` backend's: both terminate at an exactly-verified optimal
basis of the same LP, and the optimal objective value is unique.

:func:`solve_form_exact` exposes the whole ladder as a reusable
routine returning the *live* exact solver, which is what
:class:`~repro.lp.dual.IncrementalLP` builds its factorized-basis
re-solves on.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator

from repro.errors import LPError
from repro.lint.sanitizer import float_stage
from repro.lp.dual import exact_dual_feasible, run_dual_simplex
from repro.lp.model import LPModel
from repro.lp.revised import (
    INFEASIBLE,
    OPTIMAL,
    UNBOUNDED,
    WARM_INFEASIBLE,
    WARM_READY,
    RevisedSimplex,
    _no_constraint_solution,
)
from repro.lp.solution import LPSolution, LPStatus
from repro.lp.standard import (
    SparseStandardForm,
    model_objective_value,
    recover_values,
    standardize,
)

#: Tests flip this to force the float-simplex warm-start path even when
#: scipy is installed.
USE_SCIPY = True

#: Float values below this are treated as zero during crossover.
_SUPPORT_TOL = 1e-9
#: Minimal acceptable elimination pivot while selecting basis columns.
_PIVOT_TOL = 1e-7


def _scipy_modules():
    try:
        import numpy
        from scipy.optimize import linprog
        from scipy.sparse import csc_matrix
    except ImportError:  # pragma: no cover - scipy is an optional extra
        return None
    return numpy, linprog, csc_matrix


def _crossover_basis(form: SparseStandardForm, x, numpy) -> list[int] | None:  # lint: allow[float-cast] declared float warm-start stage
    """Select a basis from a float vertex solution's support.

    Columns are scanned in descending solution value (then the
    artificial identity columns, which guarantee completion) and
    accepted greedily when independent of the already-selected ones,
    measured by float Gaussian elimination.  Artificial columns picked
    here end up basic at zero and are pinned by the exact phase-2 ratio
    test, so they never distort the solved program.
    """
    m, n = form.num_rows, form.num_cols
    support = sorted(
        (j for j in range(n) if x[j] > _SUPPORT_TOL),
        key=lambda j: (-x[j], j),
    )
    in_support = set(support)
    # Degenerate vertices have fewer positive entries than rows; prefer
    # completing the basis with zero-valued *structural* columns over
    # artificials — every artificial chosen here is a pinned row that
    # exact phase 2 must pivot around.
    rest = [j for j in range(n) if j not in in_support]
    basis: list[int] = []
    used = numpy.zeros(m, dtype=bool)
    eliminated: list[tuple[int, object]] = []  # (pivot row, unit vector)
    for j in support + rest + [n + row for row in range(m)]:
        if len(basis) == m:
            break
        vector = numpy.zeros(m)
        if j < n:
            for i, value in form.cols[j].items():
                vector[i] = float(value)
        else:
            vector[j - n] = 1.0
        for pivot, unit in eliminated:
            factor = vector[pivot]
            if factor:
                vector -= factor * unit
        candidates = numpy.where(used, 0.0, numpy.abs(vector))
        pivot = int(candidates.argmax())
        if candidates[pivot] <= _PIVOT_TOL:
            continue
        vector /= vector[pivot]
        eliminated.append((pivot, vector))
        used[pivot] = True
        basis.append(j)
    return basis if len(basis) == m else None


# -- float stage -----------------------------------------------------------

def scipy_candidate_basis(form: SparseStandardForm,
                          stats: dict) -> list[int] | None:
    """HiGHS solve + support crossover; None when scipy is unusable."""
    modules = _scipy_modules()
    if modules is None:
        return None
    start = perf_counter()
    try:
        with float_stage("scipy-candidate"):
            return _scipy_candidate_basis(form, stats, modules)
    finally:
        stats["time_float"] = (stats.get("time_float", 0.0)
                               + perf_counter() - start)


def _scipy_candidate_basis(form: SparseStandardForm, stats: dict,  # lint: allow[float-cast] declared float warm-start stage
                           modules) -> list[int] | None:
    numpy, linprog, csc_matrix = modules
    m, n = form.num_rows, form.num_cols
    data, indices, indptr = [], [], [0]
    for col in form.cols:
        for i, value in sorted(col.items()):
            data.append(float(value))
            indices.append(i)
        indptr.append(len(data))
    matrix = csc_matrix(
        (numpy.array(data), numpy.array(indices), numpy.array(indptr)),
        shape=(m, n),
    )
    result = linprog(
        c=numpy.array([float(c) for c in form.costs]),
        A_eq=matrix,
        b_eq=numpy.array([float(b) for b in form.rhs]),
        bounds=(0, None),
        method="highs",
    )
    stats["float_status"] = int(result.status)
    if result.status != 0 or result.x is None:
        return None
    return _crossover_basis(form, result.x, numpy)


def float_simplex_candidate_basis(form: SparseStandardForm, stats: dict, *,
                                  max_iterations: int = 200_000,
                                  bland_trigger: int = 24,
                                  ) -> list[int] | None:
    """Optimal basis of the float revised simplex; None on failure."""
    start = perf_counter()
    with float_stage("float-simplex-candidate"):
        solver = RevisedSimplex(
            form, float_mode=True, max_iterations=max_iterations,
            bland_trigger=bland_trigger,
        )
    try:
        with float_stage("float-simplex-candidate"):
            status = solver.solve_two_phase()
    except LPError as error:
        stats["float_simplex_status"] = f"error: {error}"
        return None
    finally:
        stats["time_float"] = (stats.get("time_float", 0.0)
                               + perf_counter() - start)
    stats["float_simplex_status"] = status
    stats["float_pivots"] = solver.stats["pivots"]
    stats["float_factorizations"] = solver.stats["factorizations"]
    if status is not OPTIMAL:
        return None
    return list(solver.basis)


def candidate_bases(form: SparseStandardForm, stats: dict, *,
                    max_iterations: int = 200_000,
                    bland_trigger: int = 24,
                    ) -> Iterator[tuple[str, list[int]]]:
    """Candidate bases, laziest-first: the float simplex only runs
    when the scipy basis is absent or fails exact verification."""
    if USE_SCIPY:
        basis = scipy_candidate_basis(form, stats)
        if basis is not None:
            yield "scipy", basis
    basis = float_simplex_candidate_basis(
        form, stats, max_iterations=max_iterations,
        bland_trigger=bland_trigger,
    )
    if basis is not None:
        yield "float-simplex", basis


# -- exact stage -----------------------------------------------------------

def solve_form_exact(form: SparseStandardForm, stats: dict, *,
                     max_iterations: int = 200_000,
                     bland_trigger: int = 24,
                     eta_limit: int | None = None,
                     ) -> tuple[RevisedSimplex, str]:
    """Run the full warm-start ladder on ``form``; returns the *live*
    exact solver and its terminal status (``optimal`` / ``unbounded`` /
    ``infeasible``).  ``stats`` records the path taken, per-candidate
    verdicts and the float-stage counters.  ``eta_limit`` overrides the
    exact solvers' refactorization policy (incremental callers keep
    longer eta files than one-shot solves would).
    """
    exact_kwargs: dict = {"max_iterations": max_iterations,
                          "bland_trigger": bland_trigger}
    if eta_limit is not None:
        exact_kwargs["eta_limit"] = eta_limit
    for source, basis in candidate_bases(
            form, stats, max_iterations=max_iterations,
            bland_trigger=bland_trigger):
        solver = RevisedSimplex(form, **exact_kwargs)
        verdict = solver.warm_start(basis)
        stats[f"warm_{source}"] = verdict
        if verdict is WARM_READY:
            status = solver._run_phase(solver.phase2_costs(), 2)
            stats["basis_source"] = source
            stats["path"] = (
                "certified"
                if status is OPTIMAL and solver.stats["phase2_pivots"] == 0
                else "resumed"
            )
            return solver, status
        if verdict is WARM_INFEASIBLE and exact_dual_feasible(
                solver, solver.phase2_costs()):
            # Primal infeasible basis with exactly nonnegative reduced
            # costs: the dual simplex repairs it in place instead of
            # throwing the factorization away.
            status = run_dual_simplex(solver, solver.phase2_costs())
            stats["basis_source"] = source
            stats["path"] = "dual"
            return solver, status

    stats["path"] = "fallback"
    solver = RevisedSimplex(form, **exact_kwargs)
    return solver, solver.solve_two_phase()


class WarmStartExactBackend:
    """Exact optimum via a float warm start with rational certification."""

    name = "exact-warm"

    def __init__(self, max_iterations: int = 200_000,
                 bland_trigger: int = 24):
        self._max_iterations = max_iterations
        self._bland_trigger = bland_trigger

    def solve(self, model: LPModel) -> LPSolution:
        """Solve ``model`` exactly; all reported values are Fractions."""
        form = standardize(model)
        stats: dict = {"path": None}
        if form.num_rows == 0:
            solution = _no_constraint_solution(model, form)
            stats["path"] = "certified"
            solution.stats = stats
            return solution

        solver, status = solve_form_exact(
            form, stats, max_iterations=self._max_iterations,
            bland_trigger=self._bland_trigger,
        )
        stats.update(solver.stats)
        if status is UNBOUNDED:
            message = ("phase-2 unbounded" if stats["path"] == "fallback"
                       else "phase-2 unbounded (warm start)")
            return LPSolution(LPStatus.UNBOUNDED, message=message,
                              stats=stats)
        if status is INFEASIBLE:
            message = ("phase-1 optimum positive"
                       if stats["path"] == "fallback"
                       else "dual simplex certified infeasibility")
            return LPSolution(LPStatus.INFEASIBLE, message=message,
                              stats=stats)
        values = recover_values(form, solver.assignment())
        return LPSolution(
            LPStatus.OPTIMAL, values=values,
            objective_value=model_objective_value(model, values),
            stats=stats,
        )
