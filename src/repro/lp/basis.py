"""Sparse LU basis factorization with product-form (eta) updates.

The revised simplex needs two linear-algebra kernels per iteration:
``ftran`` (``x = B^{-1} a``, the entering column in basis coordinates)
and ``btran`` (``y = B^{-T} c``, the simplex multipliers).  The seed
kept ``B^{-1}`` as an explicit dense matrix and rebuilt it with
elementary row operations on every pivot — ``O(m^2)`` arithmetic (on
ever-growing ``Fraction``s in exact mode) per pivot even when the basis
is nearly triangular, which Handelman bases always are.

:class:`BasisFactorization` replaces that with the classical
QSopt_ex/SoPlex scheme:

- a **sparse LU factorization** ``P B = L U`` computed by Gaussian
  elimination on row dicts.  Exact mode picks the sparsest eligible
  pivot row (Markowitz-lite, deterministic smallest-index tie-break);
  float mode picks the largest magnitude (partial pivoting).  ``L`` is
  stored as the ordered list of elimination operations, ``U`` as sparse
  rows — both solve triangular systems in ``O(nnz)``.
- a **product-form eta file**: a basis change that replaces position
  ``r`` by a column with basis coordinates ``w`` multiplies ``B`` by an
  elementary matrix ``E`` (identity with column ``r`` set to ``w``).
  Pushing ``(r, w)`` costs ``O(nnz(w))``; each subsequent ftran/btran
  applies the eta (or its transpose) in ``O(nnz(w))``.
- **periodic refactorization**: the eta file is rebuilt into a fresh LU
  when it grows past ``eta_limit`` or — exact mode only — when eta
  entries blow up past ``eta_bit_limit`` bits, which keeps both the
  per-solve cost and rational entry sizes bounded.

The same code runs over ``Fraction`` and ``float``; callers share one
``stats`` dict so factorization/eta counters surface in solver stats.
"""

from __future__ import annotations

from fractions import Fraction
from time import perf_counter

#: Eta file length that triggers a refactorization.  Empirically the
#: crossover where replaying the eta file costs as much as a fresh LU on
#: the sparse Handelman bases; small enough that exact entries stay tame.
DEFAULT_ETA_LIMIT = 64

#: Exact mode only: refactorize when any eta entry's numerator plus
#: denominator exceed this many bits.  A fresh LU of the (small-entry)
#: basis columns resets the growth.
DEFAULT_ETA_BIT_LIMIT = 8192

#: Float mode: elimination pivots at or below this magnitude count as
#: zero, so a numerically singular basis is reported instead of divided.
_FLOAT_PIVOT_TOL = 1e-10


def _bit_size(value) -> int:
    """Bits in a rational entry (0 for floats: blowup cannot happen)."""
    if isinstance(value, Fraction):
        return value.numerator.bit_length() + value.denominator.bit_length()
    if isinstance(value, int):
        return value.bit_length()
    return 0


class BasisFactorization:
    """LU factors of one basis matrix plus its eta updates.

    The matrix is never stored; :meth:`factorize` consumes the basis
    columns (sparse dicts ``row -> value``) and keeps only the factors.
    Vectors are plain lists: ``ftran`` input/output and ``btran`` output
    are indexed by basis *position* / constraint *row* exactly as in the
    revised simplex (positions and rows coincide dimension-wise).
    """

    def __init__(self, m: int, *, float_mode: bool = False,
                 eta_limit: int = DEFAULT_ETA_LIMIT,
                 eta_bit_limit: int = DEFAULT_ETA_BIT_LIMIT,
                 stats: dict | None = None):
        self.m = m
        self.float_mode = float_mode
        self.zero = 0.0 if float_mode else Fraction(0)
        self.eta_limit = eta_limit
        self.eta_bit_limit = eta_bit_limit
        self.stats = stats if stats is not None else {}
        for key in ("factorizations", "eta_pivots", "max_eta"):
            self.stats.setdefault(key, 0)
        # Phase timers (seconds): the linear-algebra kernels this object
        # owns.  Written into the shared dict so they surface in solver
        # stats and, from there, in the perf harness profile section.
        for key in ("time_refactor", "time_ftran", "time_btran",
                    "time_eta"):
            self.stats.setdefault(key, 0.0)
        #: position k -> original row index of U's row k (``P``).
        self.perm: list[int] = []
        #: elimination ops ``v[i] -= factor * v[p]`` in application order.
        self.l_ops: list[tuple[int, int, object]] = []
        #: sparse rows of ``U`` by position: ``{position: value}``.
        self.u_rows: list[dict[int, object]] = []
        #: eta file: ``(r, off-diagonal {i: w_i}, w_r)`` in push order.
        self.etas: list[tuple[int, dict[int, object], object]] = []
        self._blown = False

    # -- factorization -----------------------------------------------------

    def factorize(self, columns: list[dict[int, object]]) -> bool:
        """LU-factorize the basis given by ``columns``; False = singular.

        Resets the eta file: the factors describe exactly this basis.
        """
        start = perf_counter()
        try:
            return self._factorize(columns)
        finally:
            self.stats["time_refactor"] += perf_counter() - start

    def _factorize(self, columns: list[dict[int, object]]) -> bool:
        m = self.m
        self.stats["factorizations"] += 1
        self.etas = []
        self._blown = False
        rows: list[dict[int, object]] = [{} for _ in range(m)]
        for k, col in enumerate(columns):
            for i, value in col.items():
                if value:
                    rows[i][k] = value
        perm: list[int] = []
        l_ops: list[tuple[int, int, object]] = []
        placed = [False] * m
        for k in range(m):
            pivot = -1
            if self.float_mode:
                best = _FLOAT_PIVOT_TOL
                for i in range(m):
                    if placed[i]:
                        continue
                    a = rows[i].get(k)
                    if a is not None and abs(a) > best:
                        best, pivot = abs(a), i
            else:
                best_nnz = None
                for i in range(m):
                    if placed[i]:
                        continue
                    if rows[i].get(k):
                        nnz = len(rows[i])
                        if best_nnz is None or nnz < best_nnz:
                            best_nnz, pivot = nnz, i
            if pivot < 0:
                return False
            placed[pivot] = True
            perm.append(pivot)
            prow = rows[pivot]
            pval = prow[k]
            for i in range(m):
                if placed[i]:
                    continue
                a = rows[i].get(k)
                if not a:
                    continue
                factor = a / pval
                l_ops.append((i, pivot, factor))
                row_i = rows[i]
                del row_i[k]
                for j, pv in prow.items():
                    if j == k:
                        continue
                    updated = row_i.get(j, self.zero) - factor * pv
                    if updated:
                        row_i[j] = updated
                    elif j in row_i:
                        del row_i[j]
        self.perm = perm
        self.l_ops = l_ops
        self.u_rows = [rows[p] for p in perm]
        return True

    # -- solves ------------------------------------------------------------

    def ftran(self, col: dict[int, object]) -> list:
        """``B^{-1} a`` for a sparse column ``a`` ({row: value})."""
        start = perf_counter()
        v = [self.zero] * self.m
        for i, value in col.items():
            v[i] = value
        try:
            return self._ftran_vector(v)
        finally:
            self.stats["time_ftran"] += perf_counter() - start

    def ftran_dense(self, vec: list) -> list:
        """``B^{-1} v`` for a dense vector (input is not modified)."""
        start = perf_counter()
        try:
            return self._ftran_vector(list(vec))
        finally:
            self.stats["time_ftran"] += perf_counter() - start

    def _ftran_vector(self, v: list) -> list:
        for i, p, factor in self.l_ops:
            vp = v[p]
            if vp:
                v[i] = v[i] - factor * vp
        z = [v[p] for p in self.perm]
        x = [self.zero] * self.m
        for k in range(self.m - 1, -1, -1):
            u_row = self.u_rows[k]
            total = z[k]
            for j, uv in u_row.items():
                if j != k:
                    xj = x[j]
                    if xj:
                        total = total - uv * xj
            x[k] = total / u_row[k] if total else total
        for r, off, wr in self.etas:
            xr = x[r] / wr
            if xr:
                for i, wi in off.items():
                    x[i] = x[i] - wi * xr
            x[r] = xr
        return x

    def btran(self, vec: list) -> list:
        """``B^{-T} c``: simplex multipliers for basic costs ``c``
        (indexed by basis position); also row extraction via a unit
        vector.  Input is not modified."""
        start = perf_counter()
        try:
            return self._btran_vector(vec)
        finally:
            self.stats["time_btran"] += perf_counter() - start

    def _btran_vector(self, vec: list) -> list:
        v = list(vec)
        for r, off, wr in reversed(self.etas):
            total = v[r]
            for i, wi in off.items():
                vi = v[i]
                if vi:
                    total = total - wi * vi
            v[r] = total / wr if total else total
        z = [self.zero] * self.m
        for k in range(self.m):
            u_row = self.u_rows[k]
            vk = v[k]
            zk = vk / u_row[k] if vk else vk
            z[k] = zk
            if zk:
                for j, uv in u_row.items():
                    if j != k:
                        v[j] = v[j] - uv * zk
        w = [self.zero] * self.m
        for k, p in enumerate(self.perm):
            w[p] = z[k]
        for i, p, factor in reversed(self.l_ops):
            wi = w[i]
            if wi:
                w[p] = w[p] - factor * wi
        return w

    def btran_unit(self, position: int) -> list:
        """Row ``position`` of ``B^{-1}`` (``e_r^T B^{-1}``)."""
        unit = [self.zero] * self.m
        unit[position] = 1.0 if self.float_mode else Fraction(1)
        return self.btran(unit)

    # -- updates -----------------------------------------------------------

    def push_eta(self, position: int, w: list) -> None:
        """Record the basis change replacing ``position`` by a column
        whose basis coordinates are ``w`` (dense, ``w[position] != 0``)."""
        start = perf_counter()
        off: dict[int, object] = {}
        bits = 0 if self.float_mode else _bit_size(w[position])
        for i, wi in enumerate(w):
            if wi and i != position:
                off[i] = wi
                if not self.float_mode:
                    size = _bit_size(wi)
                    if size > bits:
                        bits = size
        self.etas.append((position, off, w[position]))
        self.stats["eta_pivots"] += 1
        if len(self.etas) > self.stats["max_eta"]:
            self.stats["max_eta"] = len(self.etas)
        if bits > self.eta_bit_limit:
            self._blown = True
        self.stats["time_eta"] += perf_counter() - start

    @property
    def eta_count(self) -> int:
        return len(self.etas)

    def needs_refactor(self) -> bool:
        """True when the eta file is long or exact entries blew up."""
        return len(self.etas) >= self.eta_limit or self._blown
