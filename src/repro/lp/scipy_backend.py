"""Floating-point LP backend based on ``scipy.optimize.linprog`` (HiGHS).

This is the production backend, standing in for the paper's Gurobi.  The
model's exact rational data is converted to floats; results are floats
and downstream users rationalize them before symbolic re-checking.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.lp.model import EQ, GE, LPModel
from repro.lp.solution import LPSolution, LPStatus


class ScipyBackend:
    """Solve LP models with ``scipy.optimize.linprog(method="highs")``."""

    name = "scipy"

    def solve(self, model: LPModel) -> LPSolution:
        """Solve ``model``; statuses map 2→infeasible and 3→unbounded."""
        names = model.variable_names
        index = {name: i for i, name in enumerate(names)}
        num_vars = len(names)

        if num_vars == 0:
            # Degenerate but legal: a model with no variables is feasible
            # iff every (constant) constraint holds.
            for constraint in model.constraints:
                value = float(constraint.expr.constant_term)
                ok = value == 0 if constraint.sense == EQ else value >= 0
                if not ok:
                    return LPSolution(LPStatus.INFEASIBLE,
                                      message="constant constraint violated")
            return LPSolution(LPStatus.OPTIMAL, values={}, objective_value=0.0)

        objective = np.zeros(num_vars)
        objective_constant = 0.0
        if model.objective is not None:
            for name, coeff in model.objective.expr.coefficients():
                objective[index[name]] = float(coeff)
            objective_constant = float(model.objective.expr.constant_term)

        eq_rows: list[tuple[list[int], list[float], float]] = []
        ub_rows: list[tuple[list[int], list[float], float]] = []
        for constraint in model.constraints:
            cols: list[int] = []
            vals: list[float] = []
            for name, coeff in constraint.expr.coefficients():
                cols.append(index[name])
                vals.append(float(coeff))
            constant = float(constraint.expr.constant_term)
            if constraint.sense == EQ:
                # expr == 0  <=>  coeffs . x == -constant
                eq_rows.append((cols, vals, -constant))
            elif constraint.sense == GE:
                # expr >= 0  <=>  -coeffs . x <= constant
                ub_rows.append((cols, [-v for v in vals], constant))

        a_eq, b_eq = _assemble(eq_rows, num_vars)
        a_ub, b_ub = _assemble(ub_rows, num_vars)

        bounds = []
        for name in names:
            lower, upper = model.bounds(name)
            bounds.append((
                None if lower is None else float(lower),
                None if upper is None else float(upper),
            ))

        # Tight feasibility tolerances matter for soundness here: the
        # Handelman multipliers are multiplied by products with
        # coefficients up to ~1e8 (squared invariant bounds), so a bound
        # violated by HiGHS' default 1e-7 slack can shift the threshold
        # by thousands.  HiGHS occasionally fails outright at the
        # tightest setting, so a ladder relaxes until the solve
        # succeeds; the exact certification pass (see
        # ``repro.core.checker.certify_implications_exact``) is the
        # final safety net.
        result = None
        for tolerance in (1e-10, 1e-9, 1e-8, None):
            options = {}
            if tolerance is not None:
                options = {
                    "primal_feasibility_tolerance": tolerance,
                    "dual_feasibility_tolerance": tolerance,
                }
            result = linprog(
                c=objective,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
                options=options,
            )
            if result.status == 0:
                break
            # Infeasible/unbounded/error verdicts at a tight tolerance
            # can be spurious (HiGHS gives up before converging); a
            # genuinely infeasible or unbounded instance keeps that
            # verdict at the default rung, which is the one we trust.

        if result.status == 2:
            # HiGHS presolve conflates primal infeasibility with dual
            # infeasibility: feasible-but-unbounded instances (e.g. a
            # free variable riding an improving ray) come back as plain
            # "infeasible".  A presolve-free re-solve distinguishes the
            # two; the exact backends agree with that verdict.  Only the
            # ambiguous "infeasible" verdict is re-solved, and only a
            # definitive retry replaces it — a retry that hits iteration
            # limits or numerical trouble must not downgrade a trusted
            # INFEASIBLE to ERROR.
            retry = linprog(
                c=objective,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
                options={"presolve": False},
            )
            if retry.status in (0, 2, 3):
                result = retry

        if result.status == 2:
            return LPSolution(LPStatus.INFEASIBLE, message=result.message)
        if result.status == 3:
            return LPSolution(LPStatus.UNBOUNDED, message=result.message)
        if result.status != 0 or result.x is None:
            return LPSolution(LPStatus.ERROR, message=result.message)

        values = {name: float(result.x[index[name]]) for name in names}
        objective_value = None
        if model.objective is not None:
            objective_value = float(result.fun) + objective_constant
        return LPSolution(LPStatus.OPTIMAL, values=values,
                          objective_value=objective_value,
                          message=result.message)


def _assemble(rows: list[tuple[list[int], list[float], float]],
              num_vars: int):
    """Build a CSR matrix and RHS vector from sparse row triples."""
    if not rows:
        return None, None
    data: list[float] = []
    indices: list[int] = []
    indptr: list[int] = [0]
    rhs: list[float] = []
    for cols, vals, b in rows:
        data.extend(vals)
        indices.extend(cols)
        indptr.append(len(data))
        rhs.append(b)
    matrix = csr_matrix(
        (np.array(data), np.array(indices), np.array(indptr)),
        shape=(len(rows), num_vars),
    )
    return matrix, np.array(rhs)
