"""Linear-programming layer.

The synthesis algorithm reduces to a single LP instance (paper Step 4).
This package provides a solver-independent :class:`LPModel` plus a
registry of interchangeable backends:

- :class:`ScipyBackend` (``scipy``) — floating-point,
  ``scipy.optimize.linprog`` with the HiGHS method (the stand-in for
  the paper's Gurobi);
- :class:`RevisedSimplexBackend` (``exact``) — sparse revised simplex
  over exact rationals (Dantzig pricing, Bland fallback);
- :class:`WarmStartExactBackend` (``exact-warm``) — float warm start
  (HiGHS or the revised simplex over floats) whose candidate basis is
  refactorized and certified — or repaired — in exact arithmetic;
- :class:`DenseSimplexBackend` (``exact-dense``) — the seed's dense
  tableau simplex, kept as perf baseline and cross-check oracle.

``ExactSimplexBackend`` remains as an alias of the backend registered
under the name ``"exact"``.

All sparse exact solvers share one basis kernel
(:class:`~repro.lp.basis.BasisFactorization`: sparse LU + eta-file
updates with periodic refactorization) and one dual simplex
(:mod:`repro.lp.dual`).  :class:`~repro.lp.dual.IncrementalLP` exposes
them as an incremental re-solve API — one standardization and (mostly)
one factorization across many objectives or bound tweaks — used by the
threshold-refutation loop and the diffcost threshold search.
"""

from repro.lp.model import Constraint, LPModel, Objective
from repro.lp.solution import LPSolution, LPStatus
from repro.lp.scipy_backend import ScipyBackend
from repro.lp.simplex import DenseSimplexBackend
from repro.lp.basis import BasisFactorization
from repro.lp.revised import RevisedSimplexBackend
from repro.lp.dual import IncrementalLP, exact_dual_feasible, run_dual_simplex
from repro.lp.certify import WarmStartExactBackend
from repro.lp.standard import SparseStandardForm, standardize
from repro.lp.backend import (
    LP_SOLVER_REVISION,
    LPBackend,
    available_backends,
    backend_is_exact,
    get_backend,
    register_backend,
)

#: Backwards-compatible alias: the backend named ``"exact"``.
ExactSimplexBackend = RevisedSimplexBackend

__all__ = [
    "Constraint",
    "LPModel",
    "Objective",
    "LPSolution",
    "LPStatus",
    "LPBackend",
    "LP_SOLVER_REVISION",
    "ScipyBackend",
    "RevisedSimplexBackend",
    "WarmStartExactBackend",
    "DenseSimplexBackend",
    "ExactSimplexBackend",
    "BasisFactorization",
    "IncrementalLP",
    "run_dual_simplex",
    "exact_dual_feasible",
    "SparseStandardForm",
    "standardize",
    "available_backends",
    "backend_is_exact",
    "get_backend",
    "register_backend",
]
