"""Linear-programming layer.

The synthesis algorithm reduces to a single LP instance (paper Step 4).
This package provides a solver-independent :class:`LPModel` plus two
interchangeable backends:

- :class:`ScipyBackend` — floating-point, ``scipy.optimize.linprog`` with
  the HiGHS method (the stand-in for the paper's Gurobi);
- :class:`ExactSimplexBackend` — a pure-Python two-phase simplex over
  exact rationals (Bland's rule), used for certificate-exact results on
  small instances and as an independent cross-check of the float backend.
"""

from repro.lp.model import Constraint, LPModel, Objective
from repro.lp.solution import LPSolution, LPStatus
from repro.lp.scipy_backend import ScipyBackend
from repro.lp.simplex import ExactSimplexBackend
from repro.lp.backend import LPBackend, get_backend

__all__ = [
    "Constraint",
    "LPModel",
    "Objective",
    "LPSolution",
    "LPStatus",
    "LPBackend",
    "ScipyBackend",
    "ExactSimplexBackend",
    "get_backend",
]
