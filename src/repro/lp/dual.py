"""Dual simplex and the incremental re-solve API (``IncrementalLP``).

The primal simplex in :mod:`repro.lp.revised` needs a *primal* feasible
basis to start from.  Two situations produce a basis that is dual
feasible (all reduced costs nonnegative) but primal infeasible, where
restarting from scratch throws away a perfectly good factorization:

- a float warm-start basis whose exact refactorization reveals a
  negative basic value (:mod:`repro.lp.certify` previously fell back to
  the exact two-phase solve);
- a right-hand-side change — e.g. tightening a variable bound — applied
  to a previously *optimal* basis: costs are unchanged, so the basis
  stays dual feasible, and only primal feasibility needs repair.

:func:`run_dual_simplex` repairs both in place, driving the same
:class:`~repro.lp.basis.BasisFactorization` the primal pivots use:
pick the most-violated basic value (a basic artificial off zero counts
as violated in either direction — it means ``A x = b`` is not met), a
dual ratio test over the exact reduced costs chooses the entering
column, and the shared ``_pivot`` pushes an eta.  Anti-cycling mirrors
the primal solver: after ``bland_trigger`` consecutive degenerate
steps the leaving rule switches to Bland's smallest-basic-index choice
(the entering rule always breaks min-ratio ties toward the smallest
index, which the dual Bland guarantee requires).

:class:`IncrementalLP` packages this into the one-encode re-solve loop
used by threshold refutation: standardize a model once, factorize once,
then re-optimize per objective (primal phase 2 from the previous
optimal basis) or per bound tweak (dual simplex after an rhs patch) —
never re-encoding, and refactorizing only when the eta file says so.
"""

from __future__ import annotations

from fractions import Fraction
from time import perf_counter

from repro.errors import LPError
from repro.lint.sanitizer import exact_method, exact_region
from repro.lp.model import LPModel
from repro.lp.revised import (
    INFEASIBLE,
    OPTIMAL,
    PIVOT_LIMIT,
    UNBOUNDED,
    WARM_READY,
    RevisedSimplex,
    _no_constraint_solution,
)
from repro.lp.solution import LPSolution, LPStatus
from repro.lp.standard import (
    model_objective_value,
    recover_values,
    standardize,
)
from repro.utils.rationals import Numeric, as_fraction

_ZERO = Fraction(0)

#: Counters propagated from the live solver into IncrementalLP totals.
_SOLVER_COUNTERS = (
    "pivots", "phase1_pivots", "phase2_pivots", "dual_pivots",
    "degenerate_pivots", "bland_pivots", "refactorizations",
    "factorizations", "eta_pivots",
)

#: Phase timers (seconds) propagated the same way; float-valued, so
#: they fold with a float delta loop rather than the int counter one.
_SOLVER_TIMERS = (
    "time_pricing", "time_ratio", "time_update", "time_certify",
    "time_refactor", "time_ftran", "time_btran", "time_eta",
)


def exact_dual_feasible(solver: RevisedSimplex, costs: list) -> bool:
    """True iff every nonbasic structural column prices out ``>= 0``.

    Exact for ``Fraction`` solvers; float solvers use their pricing
    tolerance.  A dual feasible basis is a valid dual-simplex start.
    """
    cb = [costs[b] for b in solver.basis]
    y = solver._btran(cb)
    # The reduced-cost sweep is the rational certification step proper
    # (the btran above is accounted to time_btran by the kernel).
    start = perf_counter()
    try:
        threshold = -solver.dual_tol
        for j in range(solver.n):
            if solver.in_basis[j]:
                continue
            reduced = costs[j]
            for i, a in solver.cols[j].items():
                yi = y[i]
                if yi:
                    reduced = reduced - yi * a
            if reduced < threshold:
                return False
        return True
    finally:
        solver.stats["time_certify"] = (
            solver.stats.get("time_certify", 0.0) + perf_counter() - start
        )


def run_dual_simplex(solver: RevisedSimplex, costs: list) -> str:
    """Re-optimize from a dual feasible basis; ``optimal`` or
    ``infeasible`` (the dual is unbounded, with an exact Farkas row).

    The caller is responsible for dual feasibility
    (:func:`exact_dual_feasible`); artificial columns never enter, so
    the solved program is always the original one.  Basic artificials
    off zero — possible after an rhs patch on a basis that contains a
    redundant-row artificial — are treated as violated in either
    direction and driven back to zero.
    """
    with exact_region("dual-simplex", active=not solver.float_mode):
        return _dual_simplex_loop(solver, costs)


def _dual_simplex_loop(solver: RevisedSimplex, costs: list) -> str:
    solver.phase = 2
    m, n = solver.m, solver.n
    feas, ptol = solver.feas_tol, solver.pivot_tol
    zero = solver.zero
    bland = False
    degenerate_run = 0
    for _ in range(solver.max_iterations):
        # Leaving row: most violated basic value (Bland: smallest basic
        # index among the violated ones).  ``sign`` orients the row so
        # the ratio test below always sees "basic value too low".
        start = perf_counter()
        leaving, worst, sign = -1, None, 1
        for i in range(m):
            xi = solver.xb[i]
            if solver.basis[i] >= n:
                if xi > feas:
                    violation, s = xi, -1
                elif xi < -feas:
                    violation, s = -xi, 1
                else:
                    continue
            elif xi < -feas:
                violation, s = -xi, 1
            else:
                continue
            if bland:
                if leaving < 0 or solver.basis[i] < solver.basis[leaving]:
                    leaving, sign = i, s
            elif (worst is None or violation > worst):
                worst, leaving, sign = violation, i, s
        solver.stats["time_pricing"] += perf_counter() - start
        if leaving < 0:
            return OPTIMAL

        rho = solver.fact.btran_unit(leaving)
        if sign < 0:
            rho = [-value for value in rho]
        cb = [costs[b] for b in solver.basis]
        y = solver._btran(cb)
        # Dual ratio test: entering minimizes reduced_cost / -alpha over
        # alpha < 0; smallest index on ties (required for termination
        # under the Bland leaving rule, and deterministic).
        start = perf_counter()
        best_j, best_ratio = -1, None
        for j in range(n):
            if solver.in_basis[j]:
                continue
            col = solver.cols[j]
            alpha = zero
            for i, a in col.items():
                ri = rho[i]
                if ri:
                    alpha = alpha + ri * a
            if alpha >= -ptol:
                continue
            reduced = costs[j]
            for i, a in col.items():
                yi = y[i]
                if yi:
                    reduced = reduced - yi * a
            ratio = reduced / (-alpha)
            if best_ratio is None or ratio < best_ratio:
                best_j, best_ratio = j, ratio
        solver.stats["time_pricing"] += perf_counter() - start
        if best_j < 0:
            return INFEASIBLE

        w = solver._ftran(solver.cols[best_j])
        solver._pivot(leaving, best_j, w)
        solver.stats["pivots"] += 1
        solver.stats["dual_pivots"] += 1
        if bland:
            solver.stats["bland_pivots"] += 1
        degenerate = (best_ratio <= ptol if solver.float_mode
                      else not best_ratio)
        if degenerate:
            solver.stats["degenerate_pivots"] += 1
            degenerate_run += 1
            if degenerate_run >= solver.bland_trigger:
                bland = True
        else:
            degenerate_run = 0
            bland = False
    raise LPError("dual simplex iteration limit exceeded")


class IncrementalLP:
    """Exact LP over one constraint system, re-solved many times.

    Standardizes ``model`` once and keeps a live
    :class:`~repro.lp.revised.RevisedSimplex` (LU + eta factorization)
    across solves:

    - :meth:`solve` with a new objective re-optimizes with primal
      phase-2 pivots from the previous optimal basis — the basis stays
      primal feasible when only costs change, so there is no phase 1
      and no fresh factorization;
    - :meth:`update_upper` patches the standard form's right-hand side
      in place (the basis stays *dual* feasible when only ``b``
      changes) and repairs primal feasibility with the dual simplex.

    The first solve runs the ``exact-warm`` ladder of
    :func:`repro.lp.certify.solve_form_exact` (float basis + exact
    certification) unless ``float_assist=False``.  Every reported value
    is a ``Fraction``; optima are bit-identical to cold solves of the
    same model because the optimal objective value of an LP is unique.

    Constraints (and therefore phase-1 feasibility) never change under
    objective swaps, so one exact infeasibility proof is cached and
    replayed until an rhs patch invalidates it.

    ``bland_trigger`` defaults much higher than the cold solvers' 24:
    a re-solve from the previous optimum mostly walks a degenerate
    optimal face (every pivot has step 0 — the vertex is already
    optimal, the basis is chasing dual feasibility), and switching to
    Bland's crawl after 24 degenerate steps made that walk ~3x longer
    on the Handelman refutation LPs.  Termination is unaffected —
    Bland still engages after the trigger, so cycles cannot persist.
    """

    def __init__(self, model: LPModel, *, float_assist: bool = True,
                 max_iterations: int = 200_000, bland_trigger: int = 192,
                 eta_limit: int | None = None):
        self.model = model
        self.form = standardize(model)
        self.float_assist = float_assist
        self.max_iterations = max_iterations
        self.bland_trigger = bland_trigger
        # Re-solves keep longer eta files than one-shot solves: the
        # refactorization they would trigger is exactly the exact LU
        # this class amortizes.  Refactor when the eta file reaches the
        # basis dimension — the point where replaying etas on every
        # ftran/btran starts to rival a fresh LU of the m x m basis.
        from repro.lp.basis import DEFAULT_ETA_LIMIT

        self.eta_limit = (max(DEFAULT_ETA_LIMIT, self.form.num_rows)
                          if eta_limit is None else eta_limit)
        self.solver: RevisedSimplex | None = None
        self._infeasible = False
        #: (basis, eta length, refactorization count) of the anchor
        #: basis re-solves start from — see :meth:`_rewind_to_anchor`.
        self._anchor: tuple[list[int], int, int] | None = None
        self._counted: dict[str, float] = {}
        self.stats: dict[str, object] = {
            "solves": 0, "cold_solves": 0, "resolves": 0,
            "dual_resolves": 0, "max_eta": 0,
        }
        for key in _SOLVER_COUNTERS:
            self.stats[key] = 0
        for key in _SOLVER_TIMERS:
            self.stats[key] = 0.0

    # -- objectives --------------------------------------------------------

    @exact_method("incremental-lp-solve")
    def solve(self, objective=None, *, maximize: bool = False) -> LPSolution:
        """Optimize ``objective`` (an :class:`AffineExpr`; ``None``
        keeps the model's current objective) over the fixed constraints.

        The first call solves cold; later calls re-optimize from the
        previous basis with primal phase-2 pivots only.
        """
        if objective is not None:
            if maximize:
                self.model.maximize(objective)
            else:
                self.model.minimize(objective)
        costs = self._standard_costs()
        self.stats["solves"] += 1
        if self.form.num_rows == 0:
            self.form.costs = costs
            solution = _no_constraint_solution(self.model, self.form)
            solution.stats = {"path": "no-constraints"}
            return solution
        if self._infeasible:
            return LPSolution(
                LPStatus.INFEASIBLE,
                message="constraints unchanged since exact infeasibility "
                        "proof",
                stats={"path": "cached-infeasible"},
            )
        if self.solver is None:
            return self._cold_solve(costs)
        return self._resolve(costs)

    def maximize(self, objective) -> LPSolution:
        """Shorthand for ``solve(objective, maximize=True)``."""
        return self.solve(objective, maximize=True)

    # -- bound tweaks ------------------------------------------------------

    @exact_method("incremental-lp-update")
    def update_upper(self, name: str, upper: Numeric) -> LPSolution:
        """Move ``name``'s upper bound and re-optimize the current
        objective via the dual simplex (costs unchanged, so the
        previous optimal basis stays dual feasible).

        The variable must already carry a finite upper bound — the
        tweak is an rhs patch, and a variable standardized without one
        has no row/shift to patch (declare the bound, e.g. at its
        loosest useful value, before constructing the ``IncrementalLP``).
        """
        upper = as_fraction(upper)
        try:
            lower, old_upper = self.model.bounds(name)
        except KeyError:
            raise LPError(f"unknown variable {name!r}") from None
        if old_upper is None:
            raise LPError(
                f"variable {name!r} has no upper bound to tweak; declare "
                "one before building the incremental LP"
            )
        if lower is not None and upper < lower:
            raise LPError(
                f"variable {name!r} would get empty bounds: "
                f"lower {lower} > upper {upper}"
            )

        if lower is None:
            # Reflected column (x = upper - x'): the shift moves, and
            # every row containing the column absorbs the delta.  The
            # same patch is applied to the form and to the live solver
            # against their *own* column data — the solver may have
            # sign-normalized rows after an earlier patch.
            delta = upper - self.form.shifts[name]
            (col, _factor), = self.form.recover[name]
            if delta:
                for i, a in self.form.cols[col].items():
                    self.form.rhs[i] += a * delta
                if self.solver is not None:
                    for i, a in self.solver.cols[col].items():
                        self.solver.b[i] = self.solver.b[i] + a * delta
            self.form.shifts[name] = upper
        else:
            # Two-sided bounds own an `x + s = upper - lower` row.
            row = self.form.bound_rows[name]
            self.form.rhs[row] = upper - lower
            if self.solver is not None:
                (col, _factor), = self.form.recover[name]
                orientation = self.solver.cols[col][row]
                self.solver.b[row] = orientation * (upper - lower)
        self.model.set_bounds(name, lower, upper)
        self._infeasible = False

        costs = self._standard_costs()
        self.stats["solves"] += 1
        if self.solver is None:
            if self.form.num_rows == 0:  # pragma: no cover - bounds add rows
                self.form.costs = costs
                solution = _no_constraint_solution(self.model, self.form)
                solution.stats = {"path": "no-constraints"}
                return solution
            return self._cold_solve(costs)

        solver = self.solver
        solver.xb = solver.fact.ftran_dense(solver.b)
        if not exact_dual_feasible(solver, solver.phase2_costs()):
            # E.g. the last re-solve ended unbounded: no dual feasible
            # basis to repair from, so this one solve goes cold.
            self.solver = None
            return self._cold_solve(costs)
        status = run_dual_simplex(solver, solver.phase2_costs())
        self.stats["dual_resolves"] += 1
        stats = self._collect(path="dual-resolve")
        if status is INFEASIBLE:
            self._infeasible = True
            return LPSolution(
                LPStatus.INFEASIBLE,
                message="dual simplex certified infeasibility",
                stats=stats,
            )
        # The rhs changed under the anchor: re-anchor at this optimum.
        self._set_anchor()
        return self._optimal_solution(stats)

    # -- internals ---------------------------------------------------------

    def _standard_costs(self) -> list[Fraction]:
        costs = [_ZERO] * self.form.num_cols
        objective = self.model.objective
        if objective is None:
            return costs
        for name, coeff in objective.expr.coefficients():
            parts = self.form.recover.get(name)
            if parts is None:
                raise LPError(
                    f"objective variable {name!r} is not part of the "
                    "incremental model's constraint system"
                )
            coeff = as_fraction(coeff)
            for col, factor in parts:
                costs[col] += coeff * factor
        return costs

    def _cold_solve(self, costs: list[Fraction]) -> LPSolution:
        self.form.costs = costs
        self.stats["cold_solves"] += 1
        self._counted = {}
        ladder_stats: dict = {}
        if self.float_assist:
            from repro.lp.certify import solve_form_exact

            solver, status = solve_form_exact(
                self.form, ladder_stats,
                max_iterations=self.max_iterations,
                bland_trigger=self.bland_trigger,
                eta_limit=self.eta_limit,
            )
        else:
            solver = RevisedSimplex(
                self.form, max_iterations=self.max_iterations,
                bland_trigger=self.bland_trigger,
                eta_limit=self.eta_limit,
            )
            status = solver.solve_two_phase()
            ladder_stats["path"] = "cold"
        self.solver = solver
        for key in ("float_pivots", "float_factorizations", "time_float"):
            if key in ladder_stats:
                self.stats[key] = (
                    self.stats.get(key, 0) + ladder_stats[key]
                )
        stats = self._collect(path=f"cold:{ladder_stats.get('path')}")
        if status is INFEASIBLE:
            self._infeasible = True
            return LPSolution(LPStatus.INFEASIBLE,
                              message="phase-1 optimum positive",
                              stats=stats)
        if status is UNBOUNDED:
            return LPSolution(LPStatus.UNBOUNDED,
                              message="phase-2 unbounded", stats=stats)
        self._set_anchor()
        return self._optimal_solution(stats)

    #: Primal re-solve pivots allowed before trying a float-nominated
    #: basis for the new objective instead.  Re-solves usually finish
    #: well under this (the previous vertex stays optimal and only
    #: dual feasibility is re-established); the budget is a safety
    #: valve against pathological walks across a degenerate optimal
    #: face, where a fresh float candidate installed on the same
    #: solver beats pivoting onward.
    RESOLVE_PIVOT_BUDGET = 512

    def _set_anchor(self) -> None:
        """Remember the current basis as the start point of future
        re-solves (valid while no refactorization replaces the LU)."""
        solver = self.solver
        self._anchor = (list(solver.basis), len(solver.fact.etas),
                        solver.stats["refactorizations"])

    def _rewind_to_anchor(self) -> None:
        """Restore the anchor basis in O(1) by truncating the eta file.

        Chaining re-solves from the previous witness's basis lets the
        walk drift ever further across the degenerate optimal face (and
        the eta file grow without bound); every re-solve instead starts
        from the float-certified first optimum, whose factorization is
        the eta-file prefix.  A refactorization in between rebuilds the
        LU for a *newer* basis — the old prefix is gone, so that newer
        basis becomes the anchor.
        """
        solver = self.solver
        if self._anchor is None:
            return
        basis, eta_length, refactorizations = self._anchor
        if solver.stats["refactorizations"] != refactorizations:
            self._set_anchor()
            return
        if len(solver.fact.etas) == eta_length:
            return
        del solver.fact.etas[eta_length:]
        for j in solver.basis:
            solver.in_basis[j] = False
        solver.basis = list(basis)
        for j in solver.basis:
            solver.in_basis[j] = True
        solver.xb = solver.fact.ftran_dense(solver.b)

    def _resolve(self, costs: list[Fraction]) -> LPSolution:
        solver = self.solver
        solver.costs = costs
        self.form.costs = costs
        self._rewind_to_anchor()
        status = solver._run_phase(solver.phase2_costs(), 2,
                                   pivot_budget=self.RESOLVE_PIVOT_BUDGET)
        path = "resolve"
        if status is PIVOT_LIMIT:
            status = self._resolve_with_float_candidate(solver)
            path = "resolve-rescued"
        self.stats["resolves"] += 1
        stats = self._collect(path=path)
        if status is UNBOUNDED:
            return LPSolution(LPStatus.UNBOUNDED,
                              message="phase-2 unbounded", stats=stats)
        return self._optimal_solution(stats)

    def _resolve_with_float_candidate(self, solver: RevisedSimplex) -> str:
        """Finish a budget-exhausted re-solve: warm-start a float
        candidate basis for the *current* costs on the live solver, or
        resume the plateau walk un-budgeted when no candidate takes."""
        if self.float_assist:
            from repro.lp.certify import candidate_bases

            # ``warm_start`` replaces the basis even on a failed
            # verdict, so remember the (feasible) walk state in case
            # every candidate is rejected.
            resume_basis = list(solver.basis)
            ladder_stats: dict = {}
            installed = False
            for _source, basis in candidate_bases(
                    self.form, ladder_stats,
                    max_iterations=self.max_iterations,
                    bland_trigger=self.bland_trigger):
                if solver.warm_start(basis) is WARM_READY:
                    installed = True
                    self.stats["resolve_rescues"] = (
                        self.stats.get("resolve_rescues", 0) + 1
                    )
                    break
            if not installed:
                verdict = solver.warm_start(resume_basis)
                assert verdict is WARM_READY, verdict
            for key in ("float_pivots", "float_factorizations",
                        "time_float"):
                if key in ladder_stats:
                    self.stats[key] = (
                        self.stats.get(key, 0) + ladder_stats[key]
                    )
        return solver._run_phase(solver.phase2_costs(), 2)

    def _collect(self, path: str) -> dict:
        """Fold the live solver's counter deltas into the cumulative
        totals; returns this solve's own stats (deltas plus path)."""
        delta: dict = {"path": path}
        solver_stats = self.solver.stats
        for key in _SOLVER_COUNTERS:
            step = solver_stats.get(key, 0) - self._counted.get(key, 0)
            self._counted[key] = solver_stats.get(key, 0)
            if step:
                delta[key] = step
                self.stats[key] += step
        for key in _SOLVER_TIMERS:
            step = solver_stats.get(key, 0.0) - self._counted.get(key, 0.0)
            self._counted[key] = solver_stats.get(key, 0.0)
            if step > 0:
                delta[key] = step
                self.stats[key] += step
        if solver_stats.get("max_eta", 0) > self.stats["max_eta"]:
            self.stats["max_eta"] = solver_stats["max_eta"]
        return delta

    def _optimal_solution(self, stats: dict) -> LPSolution:
        values = recover_values(self.form, self.solver.assignment())
        return LPSolution(
            LPStatus.OPTIMAL, values=values,
            objective_value=model_objective_value(self.model, values),
            stats=stats,
        )
