"""Backend protocol, registry and solver revision for LP solvers.

Backends register as named factories, so new solvers (portfolio rungs,
experimental pricing rules) plug in without touching consumers:

- ``scipy`` — floating point, ``scipy.optimize.linprog`` (HiGHS);
- ``exact`` — sparse revised simplex over rationals;
- ``exact-warm`` — float warm start with exact rational certification;
- ``exact-dense`` — the seed's dense tableau simplex (perf baseline and
  cross-check oracle).

Factories import their implementation modules lazily: looking up the
name list (config validation, CLI choices) never pays for scipy/numpy.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.errors import LPError
from repro.lp.model import LPModel
from repro.lp.solution import LPSolution

#: Bump whenever any backend's algorithm changes in a way that can
#: change its answers, pivot sequences or certificates.  The value is
#: part of every :class:`~repro.engine.jobs.AnalysisJob` cache key, so
#: results produced by an old solver are never replayed as if produced
#: by the new one.  Revision 3 is the LU/eta basis factorization, the
#: dual simplex and the incremental refutation loop; revision 2 was the
#: sparse revised-simplex core; the seed dense-only solver was 1.
LP_SOLVER_REVISION = 3


class LPBackend(Protocol):
    """Anything that can solve an :class:`LPModel`."""

    name: str

    def solve(self, model: LPModel) -> LPSolution:
        """Solve ``model`` and report status, values and objective."""
        ...


_REGISTRY: dict[str, Callable[[], LPBackend]] = {}
_EXACT: set[str] = set()


def register_backend(name: str, factory: Callable[[], LPBackend], *,
                     exact: bool = False) -> None:
    """Register ``factory`` under ``name`` (re-registering overwrites).

    ``exact`` marks backends whose reported values are ``Fraction``
    (consumers use :func:`backend_is_exact` to decide whether results
    need rationalization).
    """
    _REGISTRY[name] = factory
    if exact:
        _EXACT.add(name)
    else:
        _EXACT.discard(name)


def _ensure_builtins() -> None:
    if _REGISTRY:
        return

    def scipy_factory() -> LPBackend:
        from repro.lp.scipy_backend import ScipyBackend
        return ScipyBackend()

    def exact_factory() -> LPBackend:
        from repro.lp.revised import RevisedSimplexBackend
        return RevisedSimplexBackend()

    def warm_factory() -> LPBackend:
        from repro.lp.certify import WarmStartExactBackend
        return WarmStartExactBackend()

    def dense_factory() -> LPBackend:
        from repro.lp.simplex import DenseSimplexBackend
        return DenseSimplexBackend()

    register_backend("scipy", scipy_factory)
    register_backend("exact", exact_factory, exact=True)
    register_backend("exact-warm", warm_factory, exact=True)
    register_backend("exact-dense", dense_factory, exact=True)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def backend_is_exact(name: str) -> bool:
    """True iff backend ``name`` reports exact ``Fraction`` values."""
    _ensure_builtins()
    return name in _EXACT


def get_backend(name: str) -> LPBackend:
    """Instantiate a backend by registered name."""
    _ensure_builtins()
    factory = _REGISTRY.get(name)
    if factory is None:
        raise LPError(
            f"unknown LP backend {name!r}; available: "
            f"{sorted(_REGISTRY)}"
        )
    return factory()
