"""Backend protocol and registry for LP solvers."""

from __future__ import annotations

from typing import Protocol

from repro.errors import LPError
from repro.lp.model import LPModel
from repro.lp.solution import LPSolution


class LPBackend(Protocol):
    """Anything that can solve an :class:`LPModel`."""

    name: str

    def solve(self, model: LPModel) -> LPSolution:
        """Solve ``model`` and report status, values and objective."""
        ...


def get_backend(name: str) -> LPBackend:
    """Look up a backend by name (``"scipy"`` or ``"exact"``)."""
    # Imports are local to avoid import cycles at package-load time.
    from repro.lp.scipy_backend import ScipyBackend
    from repro.lp.simplex import ExactSimplexBackend

    backends: dict[str, type] = {
        "scipy": ScipyBackend,
        "exact": ExactSimplexBackend,
    }
    if name not in backends:
        raise LPError(
            f"unknown LP backend {name!r}; available: {sorted(backends)}"
        )
    return backends[name]()
