"""Revised simplex over sparse columns, exact (``Fraction``) or float.

The solver keeps the basis inverse explicitly (an ``m x m`` dense matrix
updated by elementary row operations on each pivot) and works directly
on the sparse columns of a :class:`~repro.lp.standard.SparseStandardForm`.
Per iteration that costs ``O(m^2 + nnz(A))`` — far below the dense
tableau's ``O(m * n)`` row sweeps when ``n >> m``, which is exactly the
shape of Handelman encodings (a few dozen monomial identities over
hundreds of product multipliers).

Pricing is Dantzig (most negative reduced cost, lowest index on ties)
with a Bland fallback: after :attr:`bland_trigger` consecutive
degenerate pivots the solver switches to Bland's smallest-index rule
until the objective strictly improves again.  In exact arithmetic this
guarantees termination — Bland's rule cannot cycle, and every return to
Dantzig is preceded by a strict objective decrease, so no basis repeats.

The same code runs over floats (``float_mode=True``) with small
tolerances; the float run is never trusted for answers — it only
produces candidate bases for :mod:`repro.lp.certify` to verify exactly.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import LPError
from repro.lp.model import LPModel
from repro.lp.solution import LPSolution, LPStatus
from repro.lp.standard import (
    SparseStandardForm,
    model_objective_value,
    recover_values,
    standardize,
)

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"

#: warm_start verdicts
WARM_READY = "ready"
WARM_SINGULAR = "singular"
WARM_INFEASIBLE = "infeasible"


class RevisedSimplex:
    """Two-phase revised simplex over one standard-form instance.

    Artificial columns ``n .. n+m-1`` (the phase-1 identity basis) are
    created eagerly; they may never *enter* the basis, and in phase 2 a
    basic artificial is pinned at zero by the ratio test (any entering
    column crossing its row binds with step 0 and pivots it out), so the
    solved program is always the original one.
    """

    def __init__(self, form: SparseStandardForm, *, float_mode: bool = False,
                 max_iterations: int = 200_000, bland_trigger: int = 24,
                 refactor_every: int = 120):
        self.form = form
        self.float_mode = float_mode
        self.max_iterations = max_iterations
        self.bland_trigger = bland_trigger
        self.refactor_every = refactor_every
        self.m = form.num_rows
        self.n = form.num_cols

        if float_mode:
            convert = float
            self.dual_tol = 1e-9      # entering: reduced cost < -dual_tol
            self.pivot_tol = 1e-9     # ratio test / elimination pivots
            self.feas_tol = 1e-7      # phase-1 residual counted infeasible
        else:
            convert = Fraction
            self.dual_tol = 0
            self.pivot_tol = 0
            self.feas_tol = 0
        self.zero = convert(0)
        self.one = convert(1)

        self.cols: list[dict[int, object]] = [
            {i: convert(v) for i, v in col.items()} for col in form.cols
        ]
        for row in range(self.m):
            self.cols.append({row: self.one})  # artificial e_row
        self.b = [convert(v) for v in form.rhs]
        self.costs = [convert(v) for v in form.costs]

        # Phase-1 start: artificial identity basis, Binv = I, x_B = b.
        self.basis: list[int] = list(range(self.n, self.n + self.m))
        self.in_basis: list[bool] = (
            [False] * self.n + [True] * self.m
        )
        self.binv: list[list[object]] = [
            [self.one if i == j else self.zero for j in range(self.m)]
            for i in range(self.m)
        ]
        self.xb: list[object] = list(self.b)
        self.phase = 1
        self.stats: dict[str, int] = {
            "pivots": 0,
            "phase1_pivots": 0,
            "phase2_pivots": 0,
            "degenerate_pivots": 0,
            "bland_pivots": 0,
            "refactorizations": 0,
        }

    # -- linear algebra kernels ------------------------------------------

    def _ftran(self, col: dict[int, object]) -> list[object]:
        """``w = Binv @ a`` for a sparse column ``a``."""
        w = [self.zero] * self.m
        binv = self.binv
        for k, v in col.items():
            for i in range(self.m):
                p = binv[i][k]
                if p:
                    w[i] = w[i] + p * v
        return w

    def _btran(self, cb: list[object]) -> list[object]:
        """``y = cb^T @ Binv`` for the basic cost vector ``cb``."""
        y = [self.zero] * self.m
        for i, ci in enumerate(cb):
            if ci:
                row = self.binv[i]
                for j in range(self.m):
                    rj = row[j]
                    if rj:
                        y[j] = y[j] + ci * rj
        return y

    def _price(self, costs: list[object], y: list[object],
               bland: bool) -> int:
        """Entering column (structural only), or -1 if dual feasible."""
        best_j = -1
        best_reduced = None
        in_basis = self.in_basis
        threshold = -self.dual_tol
        for j in range(self.n):
            if in_basis[j]:
                continue
            reduced = costs[j]
            for i, a in self.cols[j].items():
                yi = y[i]
                if yi:
                    reduced = reduced - yi * a
            if reduced < threshold:
                if bland:
                    return j  # smallest improving index
                if best_reduced is None or reduced < best_reduced:
                    best_j, best_reduced = j, reduced
        return best_j

    def _ratio_test(self, w: list[object]) -> int:
        """Leaving row for the entering direction ``w``; -1 = unbounded.

        Ties break toward the smallest basic column index (required for
        Bland's termination guarantee, and deterministic).  In phase 2 a
        basic artificial is pinned at zero: any nonzero ``w[i]`` in its
        row — either sign — binds with step 0, so artificials can leave
        but never move off zero.
        """
        leaving = -1
        best = None
        xb, basis = self.xb, self.basis
        pinned = self.phase == 2
        tol = self.pivot_tol
        for i in range(self.m):
            wi = w[i]
            if pinned and basis[i] >= self.n:
                if wi > tol or wi < -tol:
                    ratio = self.zero
                else:
                    continue
            elif wi > tol:
                ratio = xb[i] / wi
            else:
                continue
            if (best is None or ratio < best
                    or (ratio == best and basis[i] < basis[leaving])):
                best, leaving = ratio, i
        return leaving

    def _pivot(self, row: int, entering: int, w: list[object]) -> object:
        """Make ``entering`` basic in ``row``; returns the step length."""
        inverse = self.one / w[row]
        pivot_row = self.binv[row]
        if inverse != 1:
            pivot_row = [x * inverse if x else x for x in pivot_row]
            self.binv[row] = pivot_row
        theta = self.xb[row] * inverse
        self.xb[row] = theta
        for i in range(self.m):
            if i == row:
                continue
            wi = w[i]
            if wi:
                other = self.binv[i]
                for k in range(self.m):
                    pk = pivot_row[k]
                    if pk:
                        other[k] = other[k] - wi * pk
                if theta:
                    self.xb[i] = self.xb[i] - wi * theta
        self.in_basis[self.basis[row]] = False
        self.in_basis[entering] = True
        self.basis[row] = entering
        return theta

    def _refactorize(self) -> bool:
        """Recompute ``Binv`` and ``x_B`` from the current basis by
        Gauss-Jordan on ``[B | I]``; returns False iff B is singular."""
        m = self.m
        self.stats["refactorizations"] += 1
        mat = [[self.zero] * (2 * m) for _ in range(m)]
        for pos, j in enumerate(self.basis):
            for i, v in self.cols[j].items():
                mat[i][pos] = v
        for i in range(m):
            mat[i][m + i] = self.one
        for col in range(m):
            pivot_row = -1
            if self.float_mode:
                best = 1e-10
                for i in range(col, m):
                    a = abs(mat[i][col])
                    if a > best:
                        best, pivot_row = a, i
            else:
                for i in range(col, m):
                    if mat[i][col]:
                        pivot_row = i
                        break
            if pivot_row < 0:
                return False
            mat[col], mat[pivot_row] = mat[pivot_row], mat[col]
            prow = mat[col]
            inverse = self.one / prow[col]
            if inverse != 1:
                prow = [x * inverse if x else x for x in prow]
                mat[col] = prow
            for i in range(m):
                if i == col:
                    continue
                factor = mat[i][col]
                if factor:
                    row_i = mat[i]
                    for k in range(2 * m):
                        pk = prow[k]
                        if pk:
                            row_i[k] = row_i[k] - factor * pk
        self.binv = [row[m:] for row in mat]
        self.xb = self._ftran_dense(self.b)
        return True

    def _ftran_dense(self, vec: list[object]) -> list[object]:
        """``Binv @ v`` for a dense vector ``v``."""
        out = [self.zero] * self.m
        for i, row in enumerate(self.binv):
            total = self.zero
            for k, vk in enumerate(vec):
                if vk:
                    rk = row[k]
                    if rk:
                        total = total + rk * vk
            out[i] = total
        return out

    # -- simplex driver ---------------------------------------------------

    def _run_phase(self, costs: list[object], phase: int) -> str:
        self.phase = phase
        bland = False
        degenerate_run = 0
        since_refactor = 0
        for _ in range(self.max_iterations):
            cb = [costs[b] for b in self.basis]
            y = self._btran(cb)
            entering = self._price(costs, y, bland)
            if entering < 0:
                return OPTIMAL
            w = self._ftran(self.cols[entering])
            leaving = self._ratio_test(w)
            if leaving < 0:
                return UNBOUNDED
            theta = self._pivot(leaving, entering, w)
            self.stats["pivots"] += 1
            self.stats[f"phase{phase}_pivots"] += 1
            if bland:
                self.stats["bland_pivots"] += 1
            degenerate = (theta <= self.pivot_tol if self.float_mode
                          else not theta)
            if degenerate:
                self.stats["degenerate_pivots"] += 1
                degenerate_run += 1
                if degenerate_run >= self.bland_trigger:
                    bland = True
            else:
                degenerate_run = 0
                bland = False
            if self.float_mode:
                since_refactor += 1
                if since_refactor >= self.refactor_every:
                    since_refactor = 0
                    if not self._refactorize():
                        raise LPError("float basis became singular")
        raise LPError("simplex iteration limit exceeded")

    def _drive_out_artificials(self) -> None:
        """Pivot zero-level basic artificials out where a structural
        column can replace them; rows where none can are redundant and
        stay pinned behind the phase-2 ratio test."""
        for row in range(self.m):
            if self.basis[row] < self.n:
                continue
            binv_row = self.binv[row]
            replacement = -1
            for j in range(self.n):
                if self.in_basis[j]:
                    continue
                value = self.zero
                for i, a in self.cols[j].items():
                    ri = binv_row[i]
                    if ri:
                        value = value + ri * a
                if value > self.pivot_tol or value < -self.pivot_tol:
                    replacement = j
                    break
            if replacement >= 0:
                self._pivot(row, replacement, self._ftran(self.cols[replacement]))

    def phase2_costs(self) -> list[object]:
        return self.costs + [self.zero] * self.m

    def solve_two_phase(self) -> str:
        """Full solve from the artificial basis; returns a status."""
        status = self._run_phase([self.zero] * self.n + [self.one] * self.m, 1)
        if status is not OPTIMAL:  # pragma: no cover - phase 1 is bounded
            raise LPError("phase-1 solve reported unbounded")
        infeasibility = self.zero
        for i, b in enumerate(self.basis):
            if b >= self.n:
                infeasibility = infeasibility + self.xb[i]
        if infeasibility > self.feas_tol:
            return INFEASIBLE
        self._drive_out_artificials()
        return self._run_phase(self.phase2_costs(), 2)

    # -- warm starting ----------------------------------------------------

    def warm_start(self, basis: list[int]) -> str:
        """Install a candidate basis; returns a ``WARM_*`` verdict.

        ``ready`` means the basis is nonsingular and exactly primal
        feasible (all basic values nonnegative, artificials at zero);
        resume with ``_run_phase(phase2_costs(), 2)``.
        """
        if len(basis) != self.m or len(set(basis)) != self.m:
            return WARM_SINGULAR
        if any(j < 0 or j >= self.n + self.m for j in basis):
            return WARM_SINGULAR
        self.basis = list(basis)
        self.in_basis = [False] * (self.n + self.m)
        for j in self.basis:
            self.in_basis[j] = True
        if not self._refactorize():
            return WARM_SINGULAR
        for i, value in enumerate(self.xb):
            if value < -self.feas_tol:
                return WARM_INFEASIBLE
            if self.basis[i] >= self.n and (value > self.feas_tol
                                            or value < -self.feas_tol):
                # A nonzero artificial means A x = b is violated.
                return WARM_INFEASIBLE
        return WARM_READY

    # -- extraction -------------------------------------------------------

    def assignment(self) -> list[object]:
        """Values of the structural standard-form columns."""
        values = [self.zero] * self.n
        for i, b in enumerate(self.basis):
            if b < self.n:
                values[b] = self.xb[i]
        return values


def _no_constraint_solution(model: LPModel,
                            form: SparseStandardForm) -> LPSolution:
    """The ``m == 0`` special case shared by the sparse exact backends."""
    if any(cost < 0 for cost in form.costs):
        return LPSolution(LPStatus.UNBOUNDED,
                          message="no constraints, improving ray")
    values = recover_values(form, [Fraction(0)] * form.num_cols)
    return LPSolution(LPStatus.OPTIMAL, values=values,
                      objective_value=model_objective_value(model, values))


class RevisedSimplexBackend:
    """Exact sparse revised simplex (two-phase) over rationals."""

    name = "exact"

    def __init__(self, max_iterations: int = 200_000,
                 bland_trigger: int = 24):
        self._max_iterations = max_iterations
        self._bland_trigger = bland_trigger

    def solve(self, model: LPModel) -> LPSolution:
        """Solve ``model`` exactly; all reported values are Fractions."""
        form = standardize(model)
        if form.num_rows == 0:
            return _no_constraint_solution(model, form)
        solver = RevisedSimplex(
            form, max_iterations=self._max_iterations,
            bland_trigger=self._bland_trigger,
        )
        status = solver.solve_two_phase()
        if status is INFEASIBLE:
            return LPSolution(LPStatus.INFEASIBLE,
                              message="phase-1 optimum positive",
                              stats=dict(solver.stats))
        if status is UNBOUNDED:
            return LPSolution(LPStatus.UNBOUNDED,
                              message="phase-2 unbounded",
                              stats=dict(solver.stats))
        values = recover_values(form, solver.assignment())
        return LPSolution(LPStatus.OPTIMAL, values=values,
                          objective_value=model_objective_value(model, values),
                          stats=dict(solver.stats))
