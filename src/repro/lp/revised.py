"""Revised simplex over sparse columns, exact (``Fraction``) or float.

The solver works directly on the sparse columns of a
:class:`~repro.lp.standard.SparseStandardForm` and keeps the basis as a
:class:`~repro.lp.basis.BasisFactorization` — a sparse LU factorization
plus a product-form eta file, refactorized periodically.  A pivot costs
``O(nnz)`` (one eta push) instead of the ``O(m^2)`` dense-inverse
update the previous revision paid, and ftran/btran stay sparse
triangular solves — exactly the QSopt_ex/SoPlex kernel shape, which
matters doubly in exact mode where every dense entry is a ``Fraction``.

Pricing is Dantzig (most negative reduced cost, lowest index on ties)
with a Bland fallback: after :attr:`bland_trigger` consecutive
degenerate pivots the solver switches to Bland's smallest-index rule
until the objective strictly improves again.  In exact arithmetic this
guarantees termination — Bland's rule cannot cycle, and every return to
Dantzig is preceded by a strict objective decrease, so no basis repeats.
(Candidate-list partial pricing was tried and reverted: on the long
degenerate plateaus of these LPs, entering columns picked from a stale
bank more than doubled the pivot count — global Dantzig pays for
itself here.)

The same code runs over floats (``float_mode=True``) with small
tolerances; the float run is never trusted for answers — it only
produces candidate bases for :mod:`repro.lp.certify` to verify exactly.
The dual simplex in :mod:`repro.lp.dual` drives the same basis object,
so primal and dual pivots share one factorization and one eta file.
"""

from __future__ import annotations

from fractions import Fraction
from time import perf_counter

from repro.errors import LPError
from repro.lint.sanitizer import exact_method
from repro.lp.basis import (
    DEFAULT_ETA_BIT_LIMIT,
    DEFAULT_ETA_LIMIT,
    BasisFactorization,
)
from repro.lp.model import LPModel
from repro.lp.solution import LPSolution, LPStatus
from repro.lp.standard import (
    SparseStandardForm,
    model_objective_value,
    recover_values,
    standardize,
)

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
#: `_run_phase` hit its optional pivot budget before terminating; the
#: solver state is a consistent feasible basis and may be resumed (or
#: warm-started elsewhere).  Only returned when a budget is passed.
PIVOT_LIMIT = "pivot-limit"

#: warm_start verdicts
WARM_READY = "ready"
WARM_SINGULAR = "singular"
WARM_INFEASIBLE = "infeasible"


class RevisedSimplex:
    """Two-phase revised simplex over one standard-form instance.

    Artificial columns ``n .. n+m-1`` (the phase-1 identity basis) are
    created eagerly; they may never *enter* the basis, and in phase 2 a
    basic artificial is pinned at zero by the ratio test (any entering
    column crossing its row binds with step 0 and pivots it out), so the
    solved program is always the original one.
    """

    def __init__(self, form: SparseStandardForm, *, float_mode: bool = False,
                 max_iterations: int = 200_000, bland_trigger: int = 24,
                 eta_limit: int = DEFAULT_ETA_LIMIT,
                 eta_bit_limit: int = DEFAULT_ETA_BIT_LIMIT):
        self.form = form
        self.float_mode = float_mode
        self.max_iterations = max_iterations
        self.bland_trigger = bland_trigger
        self.m = form.num_rows
        self.n = form.num_cols

        if float_mode:
            convert = float
            self.dual_tol = 1e-9      # entering: reduced cost < -dual_tol
            self.pivot_tol = 1e-9     # ratio test / elimination pivots
            self.feas_tol = 1e-7      # phase-1 residual counted infeasible
        else:
            convert = Fraction
            self.dual_tol = 0
            self.pivot_tol = 0
            self.feas_tol = 0
        self.zero = convert(0)
        self.one = convert(1)

        self.cols: list[dict[int, object]] = [
            {i: convert(v) for i, v in col.items()} for col in form.cols
        ]
        self.b = [convert(v) for v in form.rhs]
        # Incremental rhs tweaks can leave negative entries; equality
        # rows are sign-invariant, so renormalize for the phase-1
        # artificial start (a no-op for freshly standardized forms).
        negative = [i for i, value in enumerate(self.b) if value < 0]
        if negative:
            flip = set(negative)
            for i in negative:
                self.b[i] = -self.b[i]
            for col in self.cols:
                for i in col:
                    if i in flip:
                        col[i] = -col[i]
        for row in range(self.m):
            self.cols.append({row: self.one})  # artificial e_row
        self.costs = [convert(v) for v in form.costs]

        self.stats: dict[str, object] = {
            "pivots": 0,
            "phase1_pivots": 0,
            "phase2_pivots": 0,
            "dual_pivots": 0,
            "degenerate_pivots": 0,
            "bland_pivots": 0,
            "refactorizations": 0,
            # Phase timers (seconds).  Together with the kernel timers
            # the BasisFactorization adds below (time_refactor/ftran/
            # btran/eta) these cover disjoint code regions, so their sum
            # is a lower bound on — and in practice most of — the solve
            # wall time.
            "time_pricing": 0.0,
            "time_ratio": 0.0,
            "time_update": 0.0,
            "time_certify": 0.0,
        }
        #: LU + eta factors; shares the stats dict so factorization and
        #: eta counters surface directly in solver stats.
        self.fact = BasisFactorization(
            self.m, float_mode=float_mode, eta_limit=eta_limit,
            eta_bit_limit=eta_bit_limit, stats=self.stats,
        )

        # Phase-1 start: artificial identity basis, x_B = b.
        self.basis: list[int] = list(range(self.n, self.n + self.m))
        self.in_basis: list[bool] = (
            [False] * self.n + [True] * self.m
        )
        self.fact.factorize([self.cols[j] for j in self.basis])
        self.xb: list[object] = list(self.b)
        self.phase = 1

    # -- linear algebra kernels ------------------------------------------

    def _ftran(self, col: dict[int, object]) -> list[object]:
        """``w = B^{-1} a`` for a sparse column ``a``."""
        return self.fact.ftran(col)

    def _btran(self, cb: list[object]) -> list[object]:
        """``y = B^{-T} cb`` for the basic cost vector ``cb``."""
        return self.fact.btran(cb)

    def _price(self, costs: list[object], y: list[object],
               bland: bool) -> int:
        """Entering column (structural only), or -1 if dual feasible."""
        start = perf_counter()
        try:
            best_j = -1
            best_reduced = None
            in_basis = self.in_basis
            threshold = -self.dual_tol
            for j in range(self.n):
                if in_basis[j]:
                    continue
                reduced = costs[j]
                for i, a in self.cols[j].items():
                    yi = y[i]
                    if yi:
                        reduced = reduced - yi * a
                if reduced < threshold:
                    if bland:
                        return j  # smallest improving index
                    if best_reduced is None or reduced < best_reduced:
                        best_j, best_reduced = j, reduced
            return best_j
        finally:
            self.stats["time_pricing"] += perf_counter() - start

    def _ratio_test(self, w: list[object]) -> int:
        """Leaving row for the entering direction ``w``; -1 = unbounded.

        Ties break toward the smallest basic column index (required for
        Bland's termination guarantee, and deterministic).  In phase 2 a
        basic artificial is pinned at zero: any nonzero ``w[i]`` in its
        row — either sign — binds with step 0, so artificials can leave
        but never move off zero.
        """
        start = perf_counter()
        leaving = -1
        best = None
        xb, basis = self.xb, self.basis
        pinned = self.phase == 2
        tol = self.pivot_tol
        for i in range(self.m):
            wi = w[i]
            if pinned and basis[i] >= self.n:
                if wi > tol or wi < -tol:
                    ratio = self.zero
                else:
                    continue
            elif wi > tol:
                ratio = xb[i] / wi
            else:
                continue
            if (best is None or ratio < best
                    or (ratio == best and basis[i] < basis[leaving])):
                best, leaving = ratio, i
        self.stats["time_ratio"] += perf_counter() - start
        return leaving

    def _pivot(self, row: int, entering: int, w: list[object]) -> object:
        """Make ``entering`` basic in ``row``; returns the step length.

        The basis change is an ``O(nnz(w))`` eta push; the factorization
        is rebuilt only when the eta file crosses its refactor policy.
        """
        start = perf_counter()
        theta = self.xb[row] / w[row]
        if theta:
            for i in range(self.m):
                if i == row:
                    continue
                wi = w[i]
                if wi:
                    self.xb[i] = self.xb[i] - wi * theta
        self.xb[row] = theta
        self.in_basis[self.basis[row]] = False
        self.in_basis[entering] = True
        self.basis[row] = entering
        self.stats["time_update"] += perf_counter() - start
        self.fact.push_eta(row, w)
        if self.fact.needs_refactor():
            if not self._refactorize():
                raise LPError("basis became singular on refactorization")
        return theta

    def _refactorize(self) -> bool:
        """Fresh LU of the current basis columns (drops the eta file)
        and recompute ``x_B``; returns False iff B is singular."""
        self.stats["refactorizations"] += 1
        if not self.fact.factorize([self.cols[j] for j in self.basis]):
            return False
        self.xb = self.fact.ftran_dense(self.b)
        return True

    def _ftran_dense(self, vec: list[object]) -> list[object]:
        """``B^{-1} v`` for a dense vector ``v``."""
        return self.fact.ftran_dense(vec)

    # -- simplex driver ---------------------------------------------------

    @exact_method("lp-phase")
    def _run_phase(self, costs: list[object], phase: int,
                   pivot_budget: int | None = None) -> str:
        """Pivot until optimal/unbounded, or until ``pivot_budget``
        pivots were spent (``PIVOT_LIMIT``; state stays resumable)."""
        self.phase = phase
        bland = False
        degenerate_run = 0
        spent = 0
        for _ in range(self.max_iterations):
            if pivot_budget is not None and spent >= pivot_budget:
                return PIVOT_LIMIT
            cb = [costs[b] for b in self.basis]
            y = self._btran(cb)
            entering = self._price(costs, y, bland)
            if entering < 0:
                return OPTIMAL
            w = self._ftran(self.cols[entering])
            leaving = self._ratio_test(w)
            if leaving < 0:
                return UNBOUNDED
            theta = self._pivot(leaving, entering, w)
            spent += 1
            self.stats["pivots"] += 1
            self.stats[f"phase{phase}_pivots"] += 1
            if bland:
                self.stats["bland_pivots"] += 1
            degenerate = (theta <= self.pivot_tol if self.float_mode
                          else not theta)
            if degenerate:
                self.stats["degenerate_pivots"] += 1
                degenerate_run += 1
                if degenerate_run >= self.bland_trigger:
                    bland = True
            else:
                degenerate_run = 0
                bland = False
        raise LPError("simplex iteration limit exceeded")

    def _drive_out_artificials(self) -> None:
        """Pivot zero-level basic artificials out where a structural
        column can replace them; rows where none can are redundant and
        stay pinned behind the phase-2 ratio test."""
        for row in range(self.m):
            if self.basis[row] < self.n:
                continue
            binv_row = self.fact.btran_unit(row)
            start = perf_counter()
            replacement = -1
            for j in range(self.n):
                if self.in_basis[j]:
                    continue
                value = self.zero
                for i, a in self.cols[j].items():
                    ri = binv_row[i]
                    if ri:
                        value = value + ri * a
                if value > self.pivot_tol or value < -self.pivot_tol:
                    replacement = j
                    break
            self.stats["time_pricing"] += perf_counter() - start
            if replacement >= 0:
                self._pivot(row, replacement, self._ftran(self.cols[replacement]))

    def phase2_costs(self) -> list[object]:
        return self.costs + [self.zero] * self.m

    @exact_method("lp-two-phase")
    def solve_two_phase(self) -> str:
        """Full solve from the artificial basis; returns a status."""
        status = self._run_phase([self.zero] * self.n + [self.one] * self.m, 1)
        if status is not OPTIMAL:  # pragma: no cover - phase 1 is bounded
            raise LPError("phase-1 solve reported unbounded")
        infeasibility = self.zero
        for i, b in enumerate(self.basis):
            if b >= self.n:
                infeasibility = infeasibility + self.xb[i]
        if infeasibility > self.feas_tol:
            return INFEASIBLE
        self._drive_out_artificials()
        return self._run_phase(self.phase2_costs(), 2)

    # -- warm starting ----------------------------------------------------

    @exact_method("lp-warm-start")
    def warm_start(self, basis: list[int]) -> str:
        """Install a candidate basis; returns a ``WARM_*`` verdict.

        ``ready`` means the basis is nonsingular and exactly primal
        feasible (all basic values nonnegative, artificials at zero);
        resume with ``_run_phase(phase2_costs(), 2)``.
        """
        if len(basis) != self.m or len(set(basis)) != self.m:
            return WARM_SINGULAR
        if any(j < 0 or j >= self.n + self.m for j in basis):
            return WARM_SINGULAR
        self.basis = list(basis)
        self.in_basis = [False] * (self.n + self.m)
        for j in self.basis:
            self.in_basis[j] = True
        if not self._refactorize():
            return WARM_SINGULAR
        for i, value in enumerate(self.xb):
            if value < -self.feas_tol:
                return WARM_INFEASIBLE
            if self.basis[i] >= self.n and (value > self.feas_tol
                                            or value < -self.feas_tol):
                # A nonzero artificial means A x = b is violated.
                return WARM_INFEASIBLE
        return WARM_READY

    # -- extraction -------------------------------------------------------

    def assignment(self) -> list[object]:
        """Values of the structural standard-form columns."""
        values = [self.zero] * self.n
        for i, b in enumerate(self.basis):
            if b < self.n:
                values[b] = self.xb[i]
        return values


def _no_constraint_solution(model: LPModel,
                            form: SparseStandardForm) -> LPSolution:
    """The ``m == 0`` special case shared by the sparse exact backends."""
    if any(cost < 0 for cost in form.costs):
        return LPSolution(LPStatus.UNBOUNDED,
                          message="no constraints, improving ray")
    values = recover_values(form, [Fraction(0)] * form.num_cols)
    return LPSolution(LPStatus.OPTIMAL, values=values,
                      objective_value=model_objective_value(model, values))


class RevisedSimplexBackend:
    """Exact sparse revised simplex (two-phase) over rationals."""

    name = "exact"

    def __init__(self, max_iterations: int = 200_000,
                 bland_trigger: int = 24):
        self._max_iterations = max_iterations
        self._bland_trigger = bland_trigger

    def solve(self, model: LPModel) -> LPSolution:
        """Solve ``model`` exactly; all reported values are Fractions."""
        form = standardize(model)
        if form.num_rows == 0:
            return _no_constraint_solution(model, form)
        solver = RevisedSimplex(
            form, max_iterations=self._max_iterations,
            bland_trigger=self._bland_trigger,
        )
        status = solver.solve_two_phase()
        if status is INFEASIBLE:
            return LPSolution(LPStatus.INFEASIBLE,
                              message="phase-1 optimum positive",
                              stats=dict(solver.stats))
        if status is UNBOUNDED:
            return LPSolution(LPStatus.UNBOUNDED,
                              message="phase-2 unbounded",
                              stats=dict(solver.stats))
        values = recover_values(form, solver.assignment())
        return LPSolution(LPStatus.OPTIMAL, values=values,
                          objective_value=model_objective_value(model, values),
                          stats=dict(solver.stats))
