"""Sparse equality standard form shared by the exact LP solvers.

Converts an :class:`~repro.lp.model.LPModel` into

    min c.x   s.t.   A x = b,  x >= 0,  b >= 0

with the matrix stored *column-wise* as dicts (row index -> coefficient).
Appending a column never touches existing data — the seed's dense
builder zero-padded every row on each ``new_column`` call, a quadratic
amount of work before the solve even started.  Rows are sign-normalized
at build time (every right-hand side is nonnegative), so phase 1 of a
simplex solver can start directly from the artificial identity basis.

The transformation mirrors the classical textbook one:

- bounded-below variables are shifted to have lower bound 0;
- two-sided bounds add an explicit ``x + s = upper - lower`` row;
- upper-bound-only variables are reflected (``x = upper - x'``);
- free variables are split into positive and negative parts;
- ``>=`` constraints gain a slack column.

``recover``/``shifts`` keep enough bookkeeping to map a standard-form
assignment back to the original model variables.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import LPError
from repro.lp.model import EQ, GE, LPModel

_ZERO = Fraction(0)
_ONE = Fraction(1)


class SparseStandardForm:
    """``min c.x  s.t.  A x = b, x >= 0`` with sparse columns."""

    __slots__ = ("col_names", "cols", "costs", "rhs", "recover", "shifts",
                 "bound_rows")

    def __init__(self):
        self.col_names: list[str] = []
        #: Per column: {row index: coefficient}; only nonzeros stored.
        self.cols: list[dict[int, Fraction]] = []
        self.costs: list[Fraction] = []
        self.rhs: list[Fraction] = []
        #: original variable -> list of (column index, coefficient)
        self.recover: dict[str, list[tuple[int, Fraction]]] = {}
        self.shifts: dict[str, Fraction] = {}
        #: two-sided-bounded variable -> row index of its
        #: ``x + s = upper - lower`` row (for incremental bound tweaks).
        self.bound_rows: dict[str, int] = {}

    @property
    def num_cols(self) -> int:
        return len(self.cols)

    @property
    def num_rows(self) -> int:
        return len(self.rhs)

    @property
    def num_nonzeros(self) -> int:
        return sum(len(col) for col in self.cols)

    def new_column(self, name: str, cost: Fraction = _ZERO) -> int:
        """Append an empty column; O(1), no row padding."""
        self.col_names.append(name)
        self.cols.append({})
        self.costs.append(cost)
        return len(self.cols) - 1

    def add_row(self, columns: dict[int, Fraction], rhs: Fraction) -> int:
        """Append the row ``columns . x = rhs``, sign-normalized."""
        row = len(self.rhs)
        if rhs < 0:
            rhs = -rhs
            columns = {col: -coeff for col, coeff in columns.items()}
        self.rhs.append(rhs)
        for col, coeff in columns.items():
            if coeff:
                self.cols[col][row] = coeff
        return row

    def dense_rows(self) -> list[list[Fraction]]:
        """Materialize dense rows (input of the dense tableau backend)."""
        rows = [[_ZERO] * self.num_cols for _ in range(self.num_rows)]
        for j, col in enumerate(self.cols):
            for i, coeff in col.items():
                rows[i][j] = coeff
        return rows


def validate_bounds(model: LPModel) -> None:
    """Reject empty variable bounds (``upper < lower``) up front.

    Runs over every declared variable regardless of which standardization
    branch it would take, and always names the offending variable — the
    seed only caught this in the lower-bounded branch.
    """
    for name in model.variable_names:
        lower, upper = model.bounds(name)
        if lower is not None and upper is not None and upper < lower:
            raise LPError(
                f"variable {name!r} has empty bounds: "
                f"lower {lower} > upper {upper}"
            )


def standardize(model: LPModel) -> SparseStandardForm:
    """Convert ``model`` to sparse equality standard form."""
    validate_bounds(model)
    form = SparseStandardForm()
    objective = model.objective.expr if model.objective is not None else None

    def objective_coeff(name: str) -> Fraction:
        if objective is None:
            return _ZERO
        return objective.coefficient(name)

    # Column layout per original variable; bound rows are collected and
    # emitted first so row order matches the historical dense builder.
    bound_rows: list[tuple[str, dict[int, Fraction], Fraction]] = []
    for name in model.variable_names:
        lower, upper = model.bounds(name)
        cost = objective_coeff(name)
        if lower is None and upper is None:
            pos = form.new_column(f"{name}+", cost)
            neg = form.new_column(f"{name}-", -cost)
            form.recover[name] = [(pos, _ONE), (neg, -_ONE)]
            form.shifts[name] = _ZERO
        elif lower is not None:
            col = form.new_column(name, cost)
            form.recover[name] = [(col, _ONE)]
            form.shifts[name] = lower
            if upper is not None:
                slack = form.new_column(f"{name}.ub", _ZERO)
                bound_rows.append((name, {col: _ONE, slack: _ONE},
                                   upper - lower))
        else:
            # Only an upper bound: x = upper - x', x' >= 0.
            col = form.new_column(name, -cost)
            form.recover[name] = [(col, -_ONE)]
            form.shifts[name] = upper

    def expand_expr(expr) -> tuple[dict[int, Fraction], Fraction]:
        """Rewrite an AffineExpr over original variables into column
        space; returns (column coefficients, constant)."""
        columns: dict[int, Fraction] = {}
        constant = expr.constant_term
        for name, coeff in expr.coefficients():
            constant += coeff * form.shifts[name]
            for col, factor in form.recover[name]:
                columns[col] = columns.get(col, _ZERO) + coeff * factor
        return columns, constant

    for name, columns, rhs in bound_rows:
        form.bound_rows[name] = form.add_row(columns, rhs)

    for i, constraint in enumerate(model.constraints):
        columns, constant = expand_expr(constraint.expr)
        if constraint.sense == GE:
            slack = form.new_column(f"slack.{i}", _ZERO)
            columns[slack] = -_ONE
        elif constraint.sense != EQ:
            raise LPError(f"unsupported sense {constraint.sense!r}")
        # expr (==|>=) 0  becomes  columns . x = -constant
        form.add_row(columns, -constant)

    return form


def recover_values(form: SparseStandardForm,
                   assignment: list[Fraction]) -> dict[str, Fraction]:
    """Map a standard-form assignment back to model variables."""
    values: dict[str, Fraction] = {}
    for name, parts in form.recover.items():
        total = form.shifts[name]
        for col, factor in parts:
            total += factor * assignment[col]
        values[name] = total
    return values


def model_objective_value(model: LPModel,
                          values: dict[str, Fraction]) -> Fraction | None:
    """The model objective evaluated at recovered values."""
    if model.objective is None:
        return None
    return model.objective.expr.evaluate(values)
