"""A solver-independent linear-program model.

Constraints are affine expressions over named variables compared with 0
(``expr == 0`` or ``expr >= 0``); bounds live on the variables.  The model
preserves insertion order everywhere so that generated instances are
deterministic and backends produce reproducible pivots.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import LPError
from repro.poly.linexpr import AffineExpr
from repro.utils.rationals import Numeric, as_fraction

EQ = "=="
GE = ">="


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expr sense 0``."""

    expr: AffineExpr
    sense: str
    name: str = ""

    def __post_init__(self):
        if self.sense not in (EQ, GE):
            raise LPError(f"unknown constraint sense {self.sense!r}")

    def __str__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr} {self.sense} 0"


@dataclass(frozen=True)
class Objective:
    """A linear objective; only minimization is exposed (maximize by
    negating)."""

    expr: AffineExpr

    def __str__(self) -> str:
        return f"minimize {self.expr}"


@dataclass
class VariableInfo:
    """Bounds for a single LP variable; ``None`` means unbounded."""

    lower: Fraction | None
    upper: Fraction | None


class LPModel:
    """A linear program: variables with bounds, constraints, objective.

    Variables are referenced by name.  They may be declared explicitly
    with :meth:`add_variable` (to set bounds) or implicitly by appearing
    in a constraint, in which case they are free.
    """

    def __init__(self):
        self._variables: dict[str, VariableInfo] = {}
        self._constraints: list[Constraint] = []
        self._objective: Objective | None = None

    # -- variables --------------------------------------------------------

    def add_variable(self, name: str, lower: Numeric | None = None,
                     upper: Numeric | None = None) -> str:
        """Declare ``name`` with optional bounds; returns the name.

        Re-declaring an existing variable tightens its bounds (the
        intersection is kept).
        """
        low = None if lower is None else as_fraction(lower)
        up = None if upper is None else as_fraction(upper)
        info = self._variables.get(name)
        if info is None:
            self._variables[name] = VariableInfo(low, up)
        else:
            if low is not None:
                info.lower = low if info.lower is None else max(info.lower, low)
            if up is not None:
                info.upper = up if info.upper is None else min(info.upper, up)
        return name

    def set_bounds(self, name: str, lower: Numeric | None = None,
                   upper: Numeric | None = None) -> None:
        """Overwrite ``name``'s bounds (unlike :meth:`add_variable`,
        which only tightens).  Used by incremental re-solves that tweak
        a bound in place; the variable must already be declared."""
        if name not in self._variables:
            raise LPError(f"unknown variable {name!r}")
        self._variables[name] = VariableInfo(
            None if lower is None else as_fraction(lower),
            None if upper is None else as_fraction(upper),
        )

    def _register_expr_variables(self, expr: AffineExpr) -> None:
        for name, _ in expr.coefficients():
            if name not in self._variables:
                self._variables[name] = VariableInfo(None, None)

    @property
    def variable_names(self) -> list[str]:
        """All variables in declaration order."""
        return list(self._variables)

    def bounds(self, name: str) -> tuple[Fraction | None, Fraction | None]:
        """The ``(lower, upper)`` bounds of a variable."""
        info = self._variables[name]
        return (info.lower, info.upper)

    # -- constraints -------------------------------------------------------

    def add_equality(self, expr: AffineExpr, name: str = "") -> None:
        """Add the constraint ``expr == 0``."""
        self._register_expr_variables(expr)
        self._constraints.append(Constraint(expr, EQ, name))

    def add_inequality(self, expr: AffineExpr, name: str = "") -> None:
        """Add the constraint ``expr >= 0``."""
        self._register_expr_variables(expr)
        self._constraints.append(Constraint(expr, GE, name))

    @property
    def constraints(self) -> list[Constraint]:
        """All constraints in insertion order."""
        return list(self._constraints)

    # -- objective -----------------------------------------------------------

    def minimize(self, expr: AffineExpr) -> None:
        """Set the objective to ``minimize expr``."""
        self._register_expr_variables(expr)
        self._objective = Objective(expr)

    def maximize(self, expr: AffineExpr) -> None:
        """Set the objective to ``maximize expr`` (stored negated)."""
        self.minimize(-expr)

    def clear_objective(self) -> None:
        """Turn the instance into a pure feasibility problem."""
        self._objective = None

    @property
    def objective(self) -> Objective | None:
        """The current (minimization) objective, if any."""
        return self._objective

    # -- statistics ------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        """Number of declared variables."""
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        """Number of constraints."""
        return len(self._constraints)

    def check_assignment(self, values: dict[str, Numeric],
                         tolerance: Numeric = 0) -> list[str]:
        """Return descriptions of all constraints/bounds violated by
        ``values`` beyond ``tolerance`` (empty list means feasible)."""
        tol = as_fraction(tolerance)
        violations: list[str] = []
        for name, info in self._variables.items():
            value = as_fraction(values.get(name, 0))
            if info.lower is not None and value < info.lower - tol:
                violations.append(f"{name} = {value} < lower bound {info.lower}")
            if info.upper is not None and value > info.upper + tol:
                violations.append(f"{name} = {value} > upper bound {info.upper}")
        for constraint in self._constraints:
            value = constraint.expr.evaluate(
                {name: as_fraction(values.get(name, 0))
                 for name in constraint.expr.symbols}
            )
            if constraint.sense == EQ and abs(value) > tol:
                violations.append(f"{constraint} evaluates to {value}")
            elif constraint.sense == GE and value < -tol:
                violations.append(f"{constraint} evaluates to {value}")
        return violations

    def __str__(self) -> str:
        lines = []
        if self._objective is not None:
            lines.append(str(self._objective))
        lines.append("subject to")
        lines.extend(f"  {c}" for c in self._constraints)
        bounded = [
            f"  {info.lower if info.lower is not None else '-inf'}"
            f" <= {name} <= "
            f"{info.upper if info.upper is not None else '+inf'}"
            for name, info in self._variables.items()
            if info.lower is not None or info.upper is not None
        ]
        if bounded:
            lines.append("bounds")
            lines.extend(bounded)
        return "\n".join(lines)
