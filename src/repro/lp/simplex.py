"""The dense two-phase tableau simplex (backend ``exact-dense``).

This is the seed's original exact solver, kept as the perf baseline and
as an independent cross-check of the sparse revised simplex
(:mod:`repro.lp.revised`): classical primal simplex on a dense
``Fraction`` tableau with Bland's rule.  It is slow — every pivot sweeps
the whole ``m x n`` tableau — but exact and algorithmically boring,
which makes it a good oracle.  Standard-form conversion is shared with
the sparse solvers (:mod:`repro.lp.standard`), so the quadratic
per-column row padding of the seed builder is gone even here.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import LPError
from repro.lp.model import LPModel
from repro.lp.solution import LPSolution, LPStatus
from repro.lp.standard import (
    model_objective_value,
    recover_values,
    standardize,
)

_ZERO = Fraction(0)
_ONE = Fraction(1)


class _Tableau:
    """Dense simplex tableau with an explicit basis."""

    def __init__(self, rows: list[list[Fraction]], rhs: list[Fraction]):
        self.rows = [list(row) for row in rows]
        self.rhs = list(rhs)
        self.basis: list[int] = [-1] * len(rows)
        # Normalize to nonnegative right-hand sides.
        for i, value in enumerate(self.rhs):
            if value < 0:
                self.rows[i] = [-x for x in self.rows[i]]
                self.rhs[i] = -value

    @property
    def num_cols(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    def pivot(self, row: int, col: int) -> None:
        """Make column ``col`` basic in ``row``."""
        pivot_value = self.rows[row][col]
        inverse = _ONE / pivot_value
        self.rows[row] = [x * inverse for x in self.rows[row]]
        self.rhs[row] *= inverse
        for i, other in enumerate(self.rows):
            if i != row and other[col] != 0:
                factor = other[col]
                self.rows[i] = [
                    a - factor * b for a, b in zip(other, self.rows[row])
                ]
                self.rhs[i] -= factor * self.rhs[row]
        self.basis[row] = col


def _simplex_phase(tableau: _Tableau, costs: list[Fraction],
                   max_iterations: int,
                   allowed_cols: int | None = None,
                   counters: dict | None = None) -> Fraction:
    """Run primal simplex with Bland's rule on the given costs.

    Only columns with index below ``allowed_cols`` may enter the basis
    (used in phase 2 to keep artificial columns out).  Returns the
    optimal objective value; raises on unboundedness (caller maps it to
    a status) or iteration exhaustion.
    """
    rows = tableau.rows
    rhs = tableau.rhs
    basis = tableau.basis
    num_cols = tableau.num_cols if allowed_cols is None else allowed_cols

    for _ in range(max_iterations):
        # Reduced costs: c_j - c_B . B^{-1} A_j; with the tableau kept in
        # canonical form we recompute lazily per column.
        basic_cost = [costs[b] for b in basis]
        entering = -1
        for j in range(num_cols):
            if j in basis:
                continue
            reduced = costs[j]
            for i, row in enumerate(rows):
                if basic_cost[i] != 0 and row[j] != 0:
                    reduced -= basic_cost[i] * row[j]
            if reduced < 0:
                entering = j
                break  # Bland: first improving index.
        if entering < 0:
            value = _ZERO
            for i, b in enumerate(basis):
                if costs[b] != 0:
                    value += costs[b] * rhs[i]
            return value
        leaving = -1
        best_ratio: Fraction | None = None
        for i, row in enumerate(rows):
            if row[entering] > 0:
                ratio = rhs[i] / row[entering]
                if (best_ratio is None or ratio < best_ratio
                        or (ratio == best_ratio
                            and basis[i] < basis[leaving])):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            raise _Unbounded()
        tableau.pivot(leaving, entering)
        if counters is not None:
            counters["pivots"] += 1
    raise LPError("simplex iteration limit exceeded")


class _Unbounded(LPError):
    pass


class DenseSimplexBackend:
    """Two-phase dense tableau simplex over rationals (Bland's rule)."""

    name = "exact-dense"

    def __init__(self, max_iterations: int = 200_000):
        self._max_iterations = max_iterations

    def solve(self, model: LPModel) -> LPSolution:
        """Solve ``model`` exactly; all reported values are Fractions."""
        form = standardize(model)
        num_structural = form.num_cols
        num_rows = form.num_rows

        if num_rows == 0:
            # No constraints: optimal at the origin of standard form
            # unless some objective coefficient is negative (unbounded).
            if any(c < 0 for c in form.costs):
                return LPSolution(LPStatus.UNBOUNDED,
                                  message="no constraints, improving ray")
            values = recover_values(form, [_ZERO] * num_structural)
            return LPSolution(LPStatus.OPTIMAL, values=values,
                              objective_value=model_objective_value(
                                  model, values))

        tableau = _Tableau(form.dense_rows(), form.rhs)
        counters = {"pivots": 0}

        # Phase 1: artificial basis.
        phase1_costs = [_ZERO] * num_structural
        for i in range(num_rows):
            _append_artificial(tableau, i)
            phase1_costs.append(_ONE)
        try:
            infeasibility = _simplex_phase(
                tableau, phase1_costs, self._max_iterations,
                counters=counters,
            )
        except _Unbounded:  # pragma: no cover - phase 1 is bounded below
            return LPSolution(LPStatus.ERROR, message="phase-1 unbounded")
        if infeasibility != 0:
            return LPSolution(LPStatus.INFEASIBLE,
                              message=f"phase-1 optimum {infeasibility}",
                              stats=dict(counters))

        _drive_out_artificials(tableau, num_structural)
        _remove_redundant_rows(tableau, num_structural)

        # Phase 2 on structural columns only; artificial columns may not
        # re-enter the basis, and after redundant-row removal none is
        # basic, so they are pinned at zero for the rest of the solve.
        phase2_costs = list(form.costs) + [_ZERO] * (
            tableau.num_cols - num_structural
        )
        try:
            _simplex_phase(tableau, phase2_costs, self._max_iterations,
                           allowed_cols=num_structural, counters=counters)
        except _Unbounded:
            return LPSolution(LPStatus.UNBOUNDED, message="phase-2 unbounded",
                              stats=dict(counters))

        assignment = [_ZERO] * tableau.num_cols
        for i, b in enumerate(tableau.basis):
            assignment[b] = tableau.rhs[i]
        values = recover_values(form, assignment[:num_structural])
        return LPSolution(LPStatus.OPTIMAL, values=values,
                          objective_value=model_objective_value(model, values),
                          stats=dict(counters))


def _append_artificial(tableau: _Tableau, row: int) -> int:
    """Add an artificial column that is basic in ``row``."""
    col = tableau.num_cols
    for i, r in enumerate(tableau.rows):
        r.append(_ONE if i == row else _ZERO)
    tableau.basis[row] = col
    return col


def _drive_out_artificials(tableau: _Tableau, num_structural: int) -> None:
    """Pivot basic artificial variables out of the basis when possible."""
    for i, b in enumerate(tableau.basis):
        if b >= num_structural and tableau.rhs[i] == 0:
            for j in range(num_structural):
                if tableau.rows[i][j] != 0:
                    tableau.pivot(i, j)
                    break


def _remove_redundant_rows(tableau: _Tableau, num_structural: int) -> None:
    """Delete rows whose basic variable is still an artificial one.

    After :func:`_drive_out_artificials`, such a row has zero in every
    structural column and rhs 0 (otherwise phase 1 would not have reached
    objective 0), i.e. the original constraint was linearly dependent.
    Keeping the row would let entering columns interact with the basic
    artificial; deleting it is the standard remedy.
    """
    keep = [i for i, b in enumerate(tableau.basis) if b < num_structural]
    if len(keep) != len(tableau.basis):
        tableau.rows = [tableau.rows[i] for i in keep]
        tableau.rhs = [tableau.rhs[i] for i in keep]
        tableau.basis = [tableau.basis[i] for i in keep]
