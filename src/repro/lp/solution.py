"""LP solution objects shared by all backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class LPSolution:
    """Result of solving an :class:`~repro.lp.model.LPModel`.

    ``values`` maps variable names to floats (scipy backend) or
    :class:`Fraction` (exact backends).  ``objective_value`` is ``None``
    for feasibility problems and non-optimal statuses.  ``stats`` holds
    backend-specific solve counters (pivot counts, warm-start path,
    refactorizations, ...) consumed by the perf harness; its keys are
    backend-dependent and may be empty.
    """

    status: LPStatus
    values: dict[str, float | Fraction] = field(default_factory=dict)
    objective_value: float | Fraction | None = None
    message: str = ""
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        """True iff the solver proved optimality (or feasibility for
        objective-free instances)."""
        return self.status is LPStatus.OPTIMAL

    def value(self, name: str) -> float | Fraction:
        """Value of variable ``name`` (0 for variables absent from the
        solver's answer, which happens for variables that do not appear
        in any constraint)."""
        return self.values.get(name, 0)
