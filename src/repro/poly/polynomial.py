"""Multivariate polynomials with exact rational coefficients.

:class:`Polynomial` is immutable and hashable; arithmetic returns new
objects.  All coefficients are :class:`fractions.Fraction`, so the
constraint pipeline (guards, invariants, Handelman identities) is exact.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Iterator, Mapping

from repro.errors import PolynomialError
from repro.poly.monomial import Monomial
from repro.utils.rationals import Numeric, as_fraction, fraction_to_str


class Polynomial:
    """An immutable multivariate polynomial over ``Fraction`` coefficients.

    >>> x = Polynomial.variable("x")
    >>> y = Polynomial.variable("y")
    >>> str((x + y) * (x - y))
    'x^2 - y^2'
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, Numeric] | None = None):
        normalized: dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                frac = as_fraction(coeff)
                if frac != 0:
                    normalized[mono] = frac
        self._terms: tuple[tuple[Monomial, Fraction], ...] = tuple(
            sorted(normalized.items(), key=lambda item: item[0])
        )
        self._hash = hash(self._terms)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def zero() -> "Polynomial":
        """The zero polynomial."""
        return _ZERO

    @staticmethod
    def constant(value: Numeric) -> "Polynomial":
        """A constant polynomial."""
        return Polynomial({Monomial.one(): as_fraction(value)})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        """The polynomial consisting of a single variable."""
        return Polynomial({Monomial.of(name): Fraction(1)})

    @staticmethod
    def from_monomial(mono: Monomial, coeff: Numeric = 1) -> "Polynomial":
        """``coeff * mono`` as a polynomial."""
        return Polynomial({mono: as_fraction(coeff)})

    # -- inspection -----------------------------------------------------

    @property
    def degree(self) -> int:
        """Total degree; the zero polynomial has degree 0 by convention."""
        if not self._terms:
            return 0
        return max(mono.degree for mono, _ in self._terms)

    @property
    def variables(self) -> frozenset[str]:
        """All variables occurring with nonzero coefficient."""
        names: set[str] = set()
        for mono, _ in self._terms:
            names.update(mono.variables)
        return frozenset(names)

    def coefficient(self, mono: Monomial) -> Fraction:
        """Coefficient of ``mono`` (0 when absent)."""
        for m, c in self._terms:
            if m == mono:
                return c
        return Fraction(0)

    @property
    def constant_term(self) -> Fraction:
        """Coefficient of the constant monomial."""
        return self.coefficient(Monomial.one())

    def terms(self) -> Iterator[tuple[Monomial, Fraction]]:
        """Iterate ``(monomial, coefficient)`` pairs in canonical order."""
        return iter(self._terms)

    def monomials(self) -> list[Monomial]:
        """Monomials with nonzero coefficient, in canonical order."""
        return [mono for mono, _ in self._terms]

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self._terms

    def is_constant(self) -> bool:
        """True iff this polynomial mentions no variables."""
        return all(mono.is_constant() for mono, _ in self._terms)

    def is_affine(self) -> bool:
        """True iff total degree is at most 1."""
        return self.degree <= 1

    # -- arithmetic -----------------------------------------------------

    def _combine(self, other: "Polynomial", sign: int) -> "Polynomial":
        terms = {mono: coeff for mono, coeff in self._terms}
        for mono, coeff in other._terms:
            terms[mono] = terms.get(mono, Fraction(0)) + sign * coeff
        return Polynomial(terms)

    def __add__(self, other: "Polynomial | Numeric") -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._combine(other, 1)

    def __radd__(self, other: Numeric) -> "Polynomial":
        return self.__add__(other)

    def __sub__(self, other: "Polynomial | Numeric") -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._combine(other, -1)

    def __rsub__(self, other: Numeric) -> "Polynomial":
        coerced = _coerce(other)
        if coerced is NotImplemented:
            return NotImplemented
        return coerced._combine(self, -1)

    def __neg__(self) -> "Polynomial":
        return Polynomial({mono: -coeff for mono, coeff in self._terms})

    def __mul__(self, other: "Polynomial | Numeric") -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        terms: dict[Monomial, Fraction] = {}
        mono_mul = _monomial_product
        for mono_a, coeff_a in self._terms:
            for mono_b, coeff_b in other._terms:
                product = mono_mul(mono_a, mono_b)
                terms[product] = terms.get(product, Fraction(0)) + coeff_a * coeff_b
        return Polynomial(terms)

    def __rmul__(self, other: Numeric) -> "Polynomial":
        return self.__mul__(other)

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise PolynomialError(f"polynomial power must be a nonnegative int, got {exponent!r}")
        result = Polynomial.constant(1)
        base = self
        power = exponent
        while power:
            if power & 1:
                result = result * base
            base = base * base
            power >>= 1
        return result

    def scale(self, factor: Numeric) -> "Polynomial":
        """Multiply every coefficient by ``factor``."""
        frac = as_fraction(factor)
        return Polynomial({mono: coeff * frac for mono, coeff in self._terms})

    # -- evaluation and substitution -------------------------------------

    def evaluate(self, valuation: Mapping[str, Numeric]) -> Fraction:
        """Evaluate at a total valuation of the occurring variables."""
        total = Fraction(0)
        for mono, coeff in self._terms:
            total += coeff * as_fraction(mono.evaluate(valuation))
        return total

    def substitute(self, mapping: Mapping[str, "Polynomial"]) -> "Polynomial":
        """Substitute polynomials for variables simultaneously.

        Variables absent from ``mapping`` are left unchanged.
        """
        result = Polynomial.zero()
        for mono, coeff in self._terms:
            factor = Polynomial.constant(coeff)
            for var, exp in mono.items():
                replacement = mapping.get(var, Polynomial.variable(var))
                factor = factor * replacement**exp
            result = result + factor
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename variables; unmapped variables are kept."""
        terms: dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms:
            renamed = mono.rename(mapping)
            terms[renamed] = terms.get(renamed, Fraction(0)) + coeff
        return Polynomial(terms)

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        # Render highest-degree terms first for readability.
        parts: list[str] = []
        for mono, coeff in sorted(self._terms, key=lambda item: item[0], reverse=True):
            if mono.is_constant():
                body = fraction_to_str(abs(coeff))
            elif abs(coeff) == 1:
                body = str(mono)
            else:
                body = f"{fraction_to_str(abs(coeff))}*{mono}"
            if not parts:
                parts.append(body if coeff > 0 else f"-{body}")
            else:
                parts.append(f"+ {body}" if coeff > 0 else f"- {body}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Polynomial({str(self)!r})"


@lru_cache(maxsize=1 << 16)
def _monomial_product(a: Monomial, b: Monomial) -> Monomial:
    """Cached monomial product for the ``Polynomial.__mul__`` hot path.

    Handelman product generation multiplies the same low-degree
    monomial pairs over and over (every guard inequality shares the
    program variables); building each product ``Monomial`` involves a
    dict merge plus a sort, which the cache skips entirely on repeats.
    Monomials are immutable and hashable, so memoization is sound.
    """
    return a.multiply(b)


def _coerce(value: "Polynomial | Numeric") -> "Polynomial":
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float, Fraction)):
        return Polynomial.constant(value)
    return NotImplemented


_ZERO = Polynomial()
