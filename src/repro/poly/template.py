"""Symbolic polynomial templates (the paper's Step 1).

A :class:`TemplatePolynomial` is a polynomial over *program* variables
whose coefficients are :class:`~repro.poly.linexpr.AffineExpr` objects
over *template* (LP) variables.  The template fixed for location ``ℓ`` is

    φ(ℓ) = Σ_{f ∈ Mono_d(V)} u_ℓ_f · f

where each ``u_ℓ_f`` is a fresh LP variable.  Constraint collection
manipulates these objects symbolically: substitution of transition
updates, subtraction of templates at different locations, and addition of
concrete cost polynomials all stay linear in the ``u`` symbols — which is
precisely what makes the final system an LP.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterator, Mapping

from repro.poly.linexpr import AffineExpr
from repro.poly.monomial import Monomial, monomials_up_to_degree
from repro.poly.polynomial import Polynomial
from repro.utils.rationals import Numeric, as_fraction


class TemplatePolynomial:
    """A polynomial whose coefficients are affine in template symbols.

    >>> t = TemplatePolynomial.fresh(["x"], degree=1, name_of=lambda m: f"u_{m}")
    >>> str(t)
    '(u_1) + (u_x)*x'
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, AffineExpr] | None = None):
        normalized: dict[Monomial, AffineExpr] = {}
        if terms:
            for mono, expr in terms.items():
                if not expr.is_zero():
                    normalized[mono] = expr
        self._terms: tuple[tuple[Monomial, AffineExpr], ...] = tuple(
            sorted(normalized.items(), key=lambda item: item[0])
        )

    # -- constructors ---------------------------------------------------

    @staticmethod
    def zero() -> "TemplatePolynomial":
        """The zero template."""
        return TemplatePolynomial()

    @staticmethod
    def fresh(variables: list[str], degree: int,
              name_of: Callable[[Monomial], str]) -> "TemplatePolynomial":
        """A full template of the given degree with fresh symbols.

        ``name_of`` maps each monomial to the LP-variable name of its
        coefficient (callers encode the location into the name).
        """
        terms = {
            mono: AffineExpr.variable(name_of(mono))
            for mono in monomials_up_to_degree(variables, degree)
        }
        return TemplatePolynomial(terms)

    @staticmethod
    def from_polynomial(poly: Polynomial) -> "TemplatePolynomial":
        """Embed a concrete polynomial (constant coefficients)."""
        return TemplatePolynomial(
            {mono: AffineExpr.constant(coeff) for mono, coeff in poly.terms()}
        )

    @staticmethod
    def from_symbol(symbol: str) -> "TemplatePolynomial":
        """The template consisting of a single symbolic constant."""
        return TemplatePolynomial({Monomial.one(): AffineExpr.variable(symbol)})

    # -- inspection -----------------------------------------------------

    def coefficient(self, mono: Monomial) -> AffineExpr:
        """Symbolic coefficient of ``mono`` (zero expression if absent)."""
        for m, expr in self._terms:
            if m == mono:
                return expr
        return AffineExpr.zero()

    def monomials(self) -> list[Monomial]:
        """Monomials with a (symbolically) nonzero coefficient."""
        return [mono for mono, _ in self._terms]

    def terms(self) -> Iterator[tuple[Monomial, AffineExpr]]:
        """Iterate ``(monomial, symbolic coefficient)`` pairs."""
        return iter(self._terms)

    @property
    def symbols(self) -> frozenset[str]:
        """All template symbols used by any coefficient."""
        names: set[str] = set()
        for _, expr in self._terms:
            names.update(expr.symbols)
        return frozenset(names)

    @property
    def degree(self) -> int:
        """Total degree in the program variables."""
        if not self._terms:
            return 0
        return max(mono.degree for mono, _ in self._terms)

    def is_zero(self) -> bool:
        """True iff the template is identically the zero expression."""
        return not self._terms

    # -- arithmetic -----------------------------------------------------

    def _combine(self, other: "TemplatePolynomial", sign: int) -> "TemplatePolynomial":
        terms = {mono: expr for mono, expr in self._terms}
        for mono, expr in other._terms:
            if mono in terms:
                terms[mono] = terms[mono] + expr.scale(sign)
            else:
                terms[mono] = expr.scale(sign)
        return TemplatePolynomial(terms)

    def __add__(self, other: "TemplatePolynomial | Polynomial | Numeric") -> "TemplatePolynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._combine(other, 1)

    def __radd__(self, other: "Polynomial | Numeric") -> "TemplatePolynomial":
        return self.__add__(other)

    def __sub__(self, other: "TemplatePolynomial | Polynomial | Numeric") -> "TemplatePolynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._combine(other, -1)

    def __rsub__(self, other: "Polynomial | Numeric") -> "TemplatePolynomial":
        coerced = _coerce(other)
        if coerced is NotImplemented:
            return NotImplemented
        return coerced._combine(self, -1)

    def __neg__(self) -> "TemplatePolynomial":
        return self.scale(-1)

    def scale(self, factor: Numeric) -> "TemplatePolynomial":
        """Multiply every symbolic coefficient by a rational constant."""
        frac = as_fraction(factor)
        return TemplatePolynomial(
            {mono: expr.scale(frac) for mono, expr in self._terms}
        )

    def multiply_polynomial(self, poly: Polynomial) -> "TemplatePolynomial":
        """Multiply by a concrete polynomial (stays linear in symbols)."""
        terms: dict[Monomial, AffineExpr] = {}
        for mono_t, expr in self._terms:
            for mono_p, coeff in poly.terms():
                product = mono_t * mono_p
                scaled = expr.scale(coeff)
                if product in terms:
                    terms[product] = terms[product] + scaled
                else:
                    terms[product] = scaled
        return TemplatePolynomial(terms)

    # -- substitution and instantiation -----------------------------------

    def substitute(self, mapping: Mapping[str, Polynomial]) -> "TemplatePolynomial":
        """Substitute concrete polynomials for *program* variables.

        This implements the paper's ``φ(ℓ', Up_τ(x))``: each monomial is
        expanded under the update and its symbolic coefficient is
        distributed over the expansion.  Template symbols are untouched.
        """
        result = TemplatePolynomial.zero()
        for mono, expr in self._terms:
            expansion = Polynomial.constant(1)
            for var, exp in mono.items():
                replacement = mapping.get(var, Polynomial.variable(var))
                expansion = expansion * replacement**exp
            result = result + TemplatePolynomial(
                {m: expr.scale(c) for m, c in expansion.terms()}
            )
        return result

    def instantiate(self, assignment: Mapping[str, Numeric]) -> Polynomial:
        """Plug in values for all template symbols, yielding a concrete
        polynomial over the program variables."""
        terms: dict[Monomial, Fraction] = {}
        for mono, expr in self._terms:
            value = expr.evaluate(assignment)
            if value != 0:
                terms[mono] = value
        return Polynomial(terms)

    def evaluate_program_vars(self, valuation: Mapping[str, Numeric]) -> AffineExpr:
        """Evaluate the *program* variables, leaving an affine expression
        over the template symbols (used for initial-state constraints)."""
        result = AffineExpr.zero()
        for mono, expr in self._terms:
            result = result + expr.scale(as_fraction(mono.evaluate(valuation)))
        return result

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemplatePolynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(self._terms)

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, expr in self._terms:
            if mono.is_constant():
                parts.append(f"({expr})")
            else:
                parts.append(f"({expr})*{mono}")
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"TemplatePolynomial({str(self)!r})"


def _coerce(value: "TemplatePolynomial | Polynomial | Numeric") -> "TemplatePolynomial":
    if isinstance(value, TemplatePolynomial):
        return value
    if isinstance(value, Polynomial):
        return TemplatePolynomial.from_polynomial(value)
    if isinstance(value, (int, float, Fraction)):
        return TemplatePolynomial.from_polynomial(Polynomial.constant(value))
    return NotImplemented
