"""Affine expressions: rational linear combinations of symbols plus a constant.

:class:`AffineExpr` plays two roles in the library:

1. affine expressions over *program variables* (transition guards,
   invariant inequalities, Θ0 constraints) — the paper's ``aff_i``;
2. linear combinations of *LP variables* (template coefficients ``u_f``,
   the threshold ``t``, Handelman multipliers ``c_g``) inside
   :class:`~repro.poly.template.TemplatePolynomial` and the LP model.

Both roles need exactly the same arithmetic, so one class serves both.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Mapping

from repro.errors import PolynomialError
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial
from repro.utils.rationals import Numeric, as_fraction, fraction_to_str


class AffineExpr:
    """An immutable affine expression ``c0 + c1*s1 + ... + cn*sn``.

    >>> e = AffineExpr.variable("x") - 2 * AffineExpr.variable("y") + 3
    >>> str(e)
    'x - 2*y + 3'
    """

    __slots__ = ("_coeffs", "_constant", "_hash")

    def __init__(self, coeffs: Mapping[str, Numeric] | None = None,
                 constant: Numeric = 0):
        normalized: dict[str, Fraction] = {}
        if coeffs:
            for name, value in coeffs.items():
                frac = as_fraction(value)
                if frac != 0:
                    normalized[name] = frac
        self._coeffs: tuple[tuple[str, Fraction], ...] = tuple(
            sorted(normalized.items())
        )
        self._constant = as_fraction(constant)
        self._hash = hash((self._coeffs, self._constant))

    # -- constructors ---------------------------------------------------

    @staticmethod
    def zero() -> "AffineExpr":
        """The zero expression."""
        return _ZERO

    @staticmethod
    def constant(value: Numeric) -> "AffineExpr":
        """A constant expression."""
        return AffineExpr(constant=value)

    @staticmethod
    def variable(name: str) -> "AffineExpr":
        """A single symbol with coefficient 1."""
        return AffineExpr({name: 1})

    @staticmethod
    def from_polynomial(poly: Polynomial) -> "AffineExpr":
        """Convert an affine :class:`Polynomial`; raises otherwise."""
        if not poly.is_affine():
            raise PolynomialError(f"polynomial is not affine: {poly}")
        coeffs: dict[str, Fraction] = {}
        constant = Fraction(0)
        for mono, coeff in poly.terms():
            if mono.is_constant():
                constant = coeff
            else:
                (var,) = mono.variables
                coeffs[var] = coeff
        return AffineExpr(coeffs, constant)

    # -- inspection -----------------------------------------------------

    @property
    def constant_term(self) -> Fraction:
        """The constant part of the expression."""
        return self._constant

    @property
    def symbols(self) -> frozenset[str]:
        """Symbols occurring with nonzero coefficient."""
        return frozenset(name for name, _ in self._coeffs)

    def coefficient(self, name: str) -> Fraction:
        """Coefficient of ``name`` (0 when absent)."""
        for sym, coeff in self._coeffs:
            if sym == name:
                return coeff
        return Fraction(0)

    def coefficients(self) -> Iterator[tuple[str, Fraction]]:
        """Iterate ``(symbol, coefficient)`` pairs in sorted order."""
        return iter(self._coeffs)

    def is_constant(self) -> bool:
        """True iff no symbol occurs."""
        return not self._coeffs

    def is_zero(self) -> bool:
        """True iff this is the zero expression."""
        return not self._coeffs and self._constant == 0

    # -- arithmetic -----------------------------------------------------

    def _combine(self, other: "AffineExpr", sign: int) -> "AffineExpr":
        coeffs = {name: coeff for name, coeff in self._coeffs}
        for name, coeff in other._coeffs:
            coeffs[name] = coeffs.get(name, Fraction(0)) + sign * coeff
        return AffineExpr(coeffs, self._constant + sign * other._constant)

    def __add__(self, other: "AffineExpr | Numeric") -> "AffineExpr":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._combine(other, 1)

    def __radd__(self, other: Numeric) -> "AffineExpr":
        return self.__add__(other)

    def __sub__(self, other: "AffineExpr | Numeric") -> "AffineExpr":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._combine(other, -1)

    def __rsub__(self, other: Numeric) -> "AffineExpr":
        coerced = _coerce(other)
        if coerced is NotImplemented:
            return NotImplemented
        return coerced._combine(self, -1)

    def __neg__(self) -> "AffineExpr":
        return self.scale(-1)

    def __mul__(self, factor: Numeric) -> "AffineExpr":
        if not isinstance(factor, (int, float, Fraction)):
            return NotImplemented
        return self.scale(factor)

    def __rmul__(self, factor: Numeric) -> "AffineExpr":
        return self.__mul__(factor)

    def scale(self, factor: Numeric) -> "AffineExpr":
        """Multiply all coefficients and the constant by ``factor``."""
        frac = as_fraction(factor)
        return AffineExpr(
            {name: coeff * frac for name, coeff in self._coeffs},
            self._constant * frac,
        )

    # -- evaluation / conversion ------------------------------------------

    def evaluate(self, valuation: Mapping[str, Numeric]) -> Fraction:
        """Evaluate at a valuation covering all occurring symbols."""
        total = self._constant
        for name, coeff in self._coeffs:
            total += coeff * as_fraction(valuation[name])
        return total

    def evaluate_partial(self, valuation: Mapping[str, Numeric]) -> "AffineExpr":
        """Substitute values for the symbols present in ``valuation``."""
        coeffs: dict[str, Fraction] = {}
        constant = self._constant
        for name, coeff in self._coeffs:
            if name in valuation:
                constant += coeff * as_fraction(valuation[name])
            else:
                coeffs[name] = coeff
        return AffineExpr(coeffs, constant)

    def to_polynomial(self) -> Polynomial:
        """View this expression as a degree-≤1 polynomial."""
        terms: dict[Monomial, Fraction] = {Monomial.one(): self._constant}
        for name, coeff in self._coeffs:
            terms[Monomial.of(name)] = coeff
        return Polynomial(terms)

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        """Rename symbols; unmapped symbols are kept."""
        coeffs: dict[str, Fraction] = {}
        for name, coeff in self._coeffs:
            target = mapping.get(name, name)
            coeffs[target] = coeffs.get(target, Fraction(0)) + coeff
        return AffineExpr(coeffs, self._constant)

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = AffineExpr.constant(other)
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return (self._coeffs, self._constant) == (other._coeffs, other._constant)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        parts: list[str] = []
        for name, coeff in self._coeffs:
            if abs(coeff) == 1:
                body = name
            else:
                body = f"{fraction_to_str(abs(coeff))}*{name}"
            if not parts:
                parts.append(body if coeff > 0 else f"-{body}")
            else:
                parts.append(f"+ {body}" if coeff > 0 else f"- {body}")
        if self._constant != 0 or not parts:
            body = fraction_to_str(abs(self._constant))
            if not parts:
                parts.append(body if self._constant >= 0 else f"-{body}")
            else:
                parts.append(
                    f"+ {body}" if self._constant > 0 else f"- {body}"
                )
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"AffineExpr({str(self)!r})"


def _coerce(value: "AffineExpr | Numeric") -> "AffineExpr":
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, (int, float, Fraction)):
        return AffineExpr.constant(value)
    return NotImplemented


_ZERO = AffineExpr()
