"""Monomials: power products of variables such as ``lenA*lenB`` or ``i**2``.

A monomial is an immutable, hashable mapping from variable names to
positive integer exponents.  The empty monomial is the constant ``1``.
Monomials are ordered by (degree, lexicographic) so that iteration over
polynomials and generated LP instances are deterministic.
"""

from __future__ import annotations

import itertools
from functools import total_ordering
from typing import Iterable, Iterator, Mapping


@total_ordering
class Monomial:
    """An immutable power product of variables.

    >>> m = Monomial({"x": 2, "y": 1})
    >>> m.degree
    3
    >>> str(m)
    'x^2*y'
    """

    __slots__ = ("_powers", "_hash")

    def __init__(self, powers: Mapping[str, int] | None = None):
        items = []
        if powers:
            for var, exp in sorted(powers.items()):
                if not isinstance(exp, int):
                    raise TypeError(f"exponent of {var} must be int, got {exp!r}")
                if exp < 0:
                    raise ValueError(f"negative exponent for {var}: {exp}")
                if exp > 0:
                    items.append((var, exp))
        self._powers: tuple[tuple[str, int], ...] = tuple(items)
        self._hash = hash(self._powers)

    @staticmethod
    def one() -> "Monomial":
        """The constant monomial ``1``."""
        return _ONE

    @staticmethod
    def of(var: str, exponent: int = 1) -> "Monomial":
        """The monomial ``var**exponent``."""
        return Monomial({var: exponent})

    @property
    def degree(self) -> int:
        """Total degree (sum of exponents)."""
        return sum(exp for _, exp in self._powers)

    @property
    def variables(self) -> tuple[str, ...]:
        """Variables occurring with positive exponent, sorted."""
        return tuple(var for var, _ in self._powers)

    def exponent(self, var: str) -> int:
        """Exponent of ``var`` (0 when absent)."""
        for name, exp in self._powers:
            if name == var:
                return exp
        return 0

    def is_constant(self) -> bool:
        """True iff this is the constant monomial ``1``."""
        return not self._powers

    def is_linear(self) -> bool:
        """True iff this monomial is a single variable to the power 1."""
        return len(self._powers) == 1 and self._powers[0][1] == 1

    def items(self) -> Iterator[tuple[str, int]]:
        """Iterate ``(variable, exponent)`` pairs in sorted order."""
        return iter(self._powers)

    def multiply(self, other: "Monomial") -> "Monomial":
        """Product of two monomials (exponents add)."""
        powers = dict(self._powers)
        for var, exp in other._powers:
            powers[var] = powers.get(var, 0) + exp
        return Monomial(powers)

    __mul__ = multiply

    def divides(self, other: "Monomial") -> bool:
        """True iff ``self`` divides ``other`` componentwise."""
        return all(exp <= other.exponent(var) for var, exp in self._powers)

    def evaluate(self, valuation: Mapping[str, object]):
        """Evaluate at a valuation mapping each variable to a number."""
        result = 1
        for var, exp in self._powers:
            result *= valuation[var] ** exp
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Monomial":
        """Rename variables; unmapped variables are kept.

        Renaming two variables onto the same target merges exponents.
        """
        powers: dict[str, int] = {}
        for var, exp in self._powers:
            target = mapping.get(var, var)
            powers[target] = powers.get(target, 0) + exp
        return Monomial(powers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._powers == other._powers

    def __lt__(self, other: "Monomial") -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return (self.degree, self._powers) < (other.degree, other._powers)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._powers:
            return "1"
        parts = []
        for var, exp in self._powers:
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial({dict(self._powers)!r})"


_ONE = Monomial()


def monomials_up_to_degree(variables: Iterable[str], degree: int) -> list[Monomial]:
    """All monomials over ``variables`` with total degree at most ``degree``.

    The result is sorted (degree-lexicographic), starting with the
    constant monomial ``1``.  This is the paper's ``Mono_d(V)``.

    >>> [str(m) for m in monomials_up_to_degree(["x", "y"], 2)]
    ['1', 'x', 'y', 'x*y', 'x^2', 'y^2']
    """
    if degree < 0:
        raise ValueError("degree must be nonnegative")
    names = sorted(set(variables))
    result = [Monomial.one()]
    for total in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(names, total):
            powers: dict[str, int] = {}
            for var in combo:
                powers[var] = powers.get(var, 0) + 1
            result.append(Monomial(powers))
    return sorted(result)
