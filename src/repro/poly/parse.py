"""A small parser for polynomial expressions written as strings.

Used by tests, examples and the CLI so that polynomials such as the
paper's annotations (``2*(lenB - i)*lenA - 2*j``) can be written
naturally instead of being assembled from :class:`Polynomial` calls.

Grammar (integers and ``Fraction``-compatible ``a/b`` literals allowed)::

    expr   := term (('+' | '-') term)*
    term   := factor ('*' factor)*
    factor := atom (('^' | '**') nat)?
    atom   := number | identifier | '(' expr ')' | '-' factor
"""

from __future__ import annotations

import re
from fractions import Fraction

from repro.errors import PolynomialError
from repro.poly.polynomial import Polynomial

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>\*\*|[-+*/^()]))"
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            raise PolynomialError(
                f"invalid character in polynomial at offset {pos}: {text[pos:]!r}"
            )
        tokens.append(match.group("number") or match.group("name") or match.group("op"))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], text: str):
        self._tokens = tokens
        self._pos = 0
        self._text = text

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise PolynomialError(f"unexpected end of polynomial: {self._text!r}")
        self._pos += 1
        return token

    def _expect(self, token: str) -> None:
        found = self._next()
        if found != token:
            raise PolynomialError(
                f"expected {token!r} but found {found!r} in {self._text!r}"
            )

    def parse(self) -> Polynomial:
        result = self._expr()
        if self._peek() is not None:
            raise PolynomialError(
                f"trailing input {self._tokens[self._pos:]!r} in {self._text!r}"
            )
        return result

    def _expr(self) -> Polynomial:
        result = self._term()
        while self._peek() in ("+", "-"):
            op = self._next()
            rhs = self._term()
            result = result + rhs if op == "+" else result - rhs
        return result

    def _term(self) -> Polynomial:
        result = self._factor()
        while self._peek() in ("*", "/"):
            op = self._next()
            rhs = self._factor()
            if op == "*":
                result = result * rhs
            else:
                if not rhs.is_constant():
                    raise PolynomialError(
                        f"division by non-constant {rhs} in {self._text!r}"
                    )
                divisor = rhs.constant_term
                if divisor == 0:
                    raise PolynomialError(f"division by zero in {self._text!r}")
                result = result.scale(Fraction(1, 1) / divisor)
        return result

    def _factor(self) -> Polynomial:
        base = self._atom()
        if self._peek() in ("^", "**"):
            self._next()
            exponent_token = self._next()
            if not exponent_token.isdigit():
                raise PolynomialError(
                    f"exponent must be a natural number, got {exponent_token!r}"
                )
            base = base ** int(exponent_token)
        return base

    def _atom(self) -> Polynomial:
        token = self._next()
        if token == "(":
            inner = self._expr()
            self._expect(")")
            return inner
        if token == "-":
            return -self._factor()
        if token == "+":
            return self._factor()
        if token.isdigit():
            return Polynomial.constant(int(token))
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            return Polynomial.variable(token)
        raise PolynomialError(f"unexpected token {token!r} in {self._text!r}")


def parse_polynomial(text: str) -> Polynomial:
    """Parse ``text`` into a :class:`Polynomial`.

    >>> str(parse_polynomial("(lenA - i)*lenB - j"))
    'lenA*lenB - i*lenB - j'
    """
    return _Parser(_tokenize(text), text).parse()
