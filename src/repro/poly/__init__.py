"""Exact multivariate polynomial arithmetic over rational coefficients.

This package provides the symbolic backbone of the analysis:

- :class:`~repro.poly.monomial.Monomial` — a power product of variables;
- :class:`~repro.poly.polynomial.Polynomial` — multivariate polynomials
  with :class:`fractions.Fraction` coefficients;
- :class:`~repro.poly.linexpr.AffineExpr` — affine expressions, used both
  for program guards/invariants and as linear combinations of LP
  variables;
- :class:`~repro.poly.template.TemplatePolynomial` — polynomials whose
  coefficients are themselves affine expressions over symbolic template
  variables (the ``u_f`` of the paper's Step 1);
- :func:`~repro.poly.parse.parse_polynomial` — a convenience parser for
  writing polynomials as strings in tests and examples.
"""

from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial
from repro.poly.linexpr import AffineExpr
from repro.poly.template import TemplatePolynomial
from repro.poly.parse import parse_polynomial

__all__ = [
    "Monomial",
    "Polynomial",
    "AffineExpr",
    "TemplatePolynomial",
    "parse_polynomial",
]
