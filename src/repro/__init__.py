"""repro — Differential cost analysis with simultaneous potentials and
anti-potentials.

A from-scratch reproduction of Žikelić, Chang, Bolignano & Raimondi,
*"Differential Cost Analysis with Simultaneous Potentials and
Anti-potentials"* (PLDI 2022), including every substrate the paper's
prototype depended on: an imperative frontend, transition systems with a
concrete interpreter, affine invariant generation, Handelman-based
constraint conversion and LP solving.

Quick start::

    from repro import load_program, analyze_diffcost

    old = load_program(OLD_SOURCE, name="join_old")
    new = load_program(NEW_SOURCE, name="join_new")
    result = analyze_diffcost(old, new)
    print(result.threshold_display)
"""

from repro.config import AnalysisConfig
from repro.errors import ReproError
from repro.lang import load_program, parse_program
from repro.core import (
    AnalysisStatus,
    BoundProofResult,
    CertificateChecker,
    DiffCostAnalyzer,
    DiffCostResult,
    PotentialFunction,
    RefutationResult,
    SingleProgramResult,
    analyze_diffcost,
    analyze_single_program,
    naive_diffcost,
    prove_symbolic_bound,
    refute_threshold,
    find_difference_witness,
)
from repro.poly import Polynomial, parse_polynomial
from repro.ts import CostSearch, Interpreter, TransitionSystem

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "ReproError",
    "load_program",
    "parse_program",
    "AnalysisStatus",
    "DiffCostAnalyzer",
    "DiffCostResult",
    "BoundProofResult",
    "RefutationResult",
    "SingleProgramResult",
    "PotentialFunction",
    "CertificateChecker",
    "analyze_diffcost",
    "analyze_single_program",
    "naive_diffcost",
    "prove_symbolic_bound",
    "refute_threshold",
    "find_difference_witness",
    "Polynomial",
    "parse_polynomial",
    "TransitionSystem",
    "Interpreter",
    "CostSearch",
    "__version__",
]
