"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch a single base class.  Sub-hierarchies follow the package
structure (language frontend, transition systems, LP solving, analysis).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PolynomialError(ReproError):
    """Raised for invalid polynomial operations (e.g. non-affine input
    where an affine expression is required)."""


class LanguageError(ReproError):
    """Base class for frontend (lexer/parser/typecheck/lowering) errors."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}:{column or 0}: {message}"
        super().__init__(message)


class LexerError(LanguageError):
    """Raised when the lexer encounters an invalid character sequence."""


class ParseError(LanguageError):
    """Raised when the parser encounters unexpected syntax."""


class TypecheckError(LanguageError):
    """Raised by semantic checks (undefined variables, non-affine guards,
    malformed cost updates, ...)."""


class LoweringError(LanguageError):
    """Raised when AST-to-transition-system lowering fails."""


class TransitionSystemError(ReproError):
    """Raised for structurally invalid transition systems."""


class InterpreterError(ReproError):
    """Raised during concrete execution (e.g. stuck states, unresolved
    nondeterminism, step-budget exhaustion)."""


class NonTerminationError(InterpreterError):
    """Raised when a run exceeds its step budget, which under the paper's
    standing assumption indicates (apparent) non-termination."""


class InvariantError(ReproError):
    """Raised by invariant generation (e.g. unsupported constructs)."""


class LPError(ReproError):
    """Base class for linear-programming layer errors."""


class LPInfeasibleError(LPError):
    """Raised when an LP instance is proven infeasible."""


class LPUnboundedError(LPError):
    """Raised when an LP instance is unbounded in the objective
    direction."""


class AnalysisError(ReproError):
    """Raised for invalid analysis requests (mismatched variable sets,
    degree/K out of range, ...)."""


class CertificateError(ReproError):
    """Raised when a synthesized certificate fails independent
    verification."""
