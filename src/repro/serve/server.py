"""Async serving front-end over the engine's job model.

One :class:`AnalysisServer` is a small JSON-over-HTTP service (stdlib
``asyncio`` only) in front of the engine seam built in PRs 1–4:

- every request becomes a content-addressed
  :class:`~repro.engine.jobs.AnalysisJob`, so identical requests are
  *deduplicated twice* — against the persistent
  :class:`~repro.engine.cache.ResultCache` (a repeat of yesterday's
  request replays in microseconds) and against in-flight work (two
  concurrent identical requests run the analysis once and both get the
  one result);
- analysis runs on the engine's long-lived
  :class:`~repro.engine.scheduler.WorkerPool`, driven by a dedicated
  bridge thread.  The event loop and the pool meet only at a
  thread-safe message queue and ``loop.call_soon_threadsafe`` — the
  pool's bookkeeping stays single-threaded, exactly as the scheduler
  requires;
- a per-request deadline reuses the scheduler's cancellation path: when
  the last request waiting on a job times out, the job's worker is
  terminated through :meth:`WorkerPool.cancel` (the same cancel/done
  race-safe path portfolio escalation uses) and the request gets a
  structured ``"timeout"`` response;
- ``"portfolio"`` requests race the escalating config ladder with
  ladder-order selection — first success wins, the abandoned rungs are
  released (and cancelled once no other request shares them).

HTTP surface (all bodies JSON):

- ``POST /analyze`` — run one job (or a portfolio); see
  :func:`job_from_payload` for the request schema;
- ``GET /healthz`` — liveness plus serving/engine counters (zeroed but
  schema-complete before the engine warms up);
- ``GET /metrics`` — Prometheus text exposition of the process
  registry (request/job/cache counters, latency histograms, plus
  point-in-time gauges refreshed at scrape time).
"""

from __future__ import annotations

import asyncio
import json
import math
import queue
import threading
import time
from dataclasses import fields as dataclass_fields
from dataclasses import replace

from repro.config import AnalysisConfig, ServeConfig
from repro.engine.cache import ResultCache
from repro.engine.executor import ExecutorStats, ParallelExecutor
from repro.engine.jobs import JOB_KINDS, AnalysisJob, JobResult
from repro.engine.portfolio import (
    PORTFOLIO_MODES,
    portfolio_jobs,
    select_result,
)
from repro.engine.scheduler import WorkerPool
from repro.errors import ReproError
from repro.faults import fault_point
from repro.obs import get_logger, get_registry

_LOG = get_logger("serve.server")

_CONFIG_FIELDS = frozenset(f.name for f in dataclass_fields(AnalysisConfig))

#: Paths worth a per-path label on the request counter; anything else is
#: folded into ``"other"`` so scanners cannot blow up series cardinality.
_KNOWN_PATHS = ("/analyze", "/healthz", "/metrics",
                "/cache/delta", "/cache/merge")


class ServeError(ReproError):
    """A malformed serving request (maps to HTTP 400)."""


# -- shared HTTP/1.1 plumbing (this server and the cluster coordinator) ----

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            429: "Too Many Requests", 503: "Service Unavailable"}


async def read_http_request(reader: asyncio.StreamReader
                            ) -> tuple[str, str, bytes, str] | None:
    """One request off the stream: ``(METHOD, path, body, query)``, or
    ``None`` for a connect-and-leave probe.  ``query`` is the raw query
    string (no leading ``?``, empty when absent); ``path`` is always
    bare so fault-site and counter matching stay query-insensitive.
    Raises :class:`ServeError` on a malformed request line or
    Content-Length."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    try:
        method, target, _version = request_line.decode().split(None, 2)
    except ValueError:
        raise ServeError("malformed request line") from None
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode(errors="replace").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise ServeError("malformed Content-Length") from None
    body = (await reader.readexactly(content_length)
            if content_length else b"")
    path, _sep, query = target.partition("?")
    return method.upper(), path, body, query


async def handle_http_client(reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             route, *, drop_site: str | None = None) -> None:
    """The one-request-per-connection loop shared by the analysis server
    and the coordinator.  ``route(method, path, body, query)`` returns
    ``(status, payload)`` or ``(status, payload, headers)``; a string
    payload is sent as Prometheus text, anything else as JSON.  When
    ``drop_site`` names a fault site, a matching rule kills the
    connection after the request is read and before any response byte —
    the vanishing-server failure clients must survive.
    """
    status: int | None = 400
    payload: dict | str = {"error": "bad request"}
    headers: dict = {}
    try:
        request = await asyncio.wait_for(read_http_request(reader),
                                         timeout=60)
        if request is None:
            status = None  # connect-and-leave probe: say nothing
        elif (drop_site is not None
                and fault_point(drop_site, name=request[1]) is not None):
            status = None
        else:
            response = await route(*request)
            status, payload = response[0], response[1]
            headers = response[2] if len(response) > 2 else {}
    except (asyncio.TimeoutError, asyncio.IncompleteReadError):
        status, payload = 400, {"error": "incomplete request"}
    except ServeError as error:
        status, payload = 400, {"error": str(error)}
    except (asyncio.LimitOverrunError, ValueError):
        # e.g. a request/header line past the StreamReader's 64KB
        # limit — readline() surfaces that as a ValueError.
        status, payload = 400, {"error": "oversized or malformed request"}
    except ConnectionError:
        status = None
    finally:
        if status is not None:
            try:
                if isinstance(payload, str):  # /metrics exposition
                    data = payload.encode()
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                else:
                    data = json.dumps(payload).encode()
                    content_type = "application/json"
                extra = "".join(f"{name}: {value}\r\n"
                                for name, value in headers.items())
                writer.write(
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{extra}"
                    f"Connection: close\r\n\r\n".encode() + data
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def job_from_payload(payload: dict, base: AnalysisConfig) -> AnalysisJob:
    """Build the job a request payload describes.

    Schema::

        {"kind": "diff" | "bound" | "refute" | "single",
         "old_source": "...imp source...",
         "new_source": "...",              # absent for "single"
         "config": {"degree": 2, ...},     # partial AnalysisConfig overrides
         "name": "display-name",
         "bound": "polynomial",            # "bound" jobs
         "candidate": 9999.0}              # "refute" jobs

    ``config`` overrides are applied over the server's base config;
    unknown fields (and invalid values, via ``AnalysisConfig``'s own
    validation) are rejected rather than ignored — a typo silently
    falling back to defaults would serve the wrong analysis.
    """
    if not isinstance(payload, dict):
        raise ServeError("request body must be a JSON object")
    kind = payload.get("kind", "diff")
    if kind not in JOB_KINDS:
        raise ServeError(f"unknown job kind {kind!r} (use one of {JOB_KINDS})")
    overrides = payload.get("config") or {}
    if not isinstance(overrides, dict):
        raise ServeError("config must be a JSON object of AnalysisConfig fields")
    unknown = sorted(set(overrides) - _CONFIG_FIELDS)
    if unknown:
        raise ServeError(f"unknown config field(s): {', '.join(unknown)}")
    config = replace(base, **overrides)

    old_source = payload.get("old_source")
    if not isinstance(old_source, str) or not old_source.strip():
        raise ServeError("old_source must be non-empty imp source text")
    new_source = payload.get("new_source")
    if new_source is not None and not isinstance(new_source, str):
        raise ServeError("new_source must be imp source text")
    bound = payload.get("bound")
    if bound is not None and not isinstance(bound, str):
        raise ServeError("bound must be a polynomial string")
    candidate = payload.get("candidate")
    if candidate is not None and not isinstance(candidate, (int, float)):
        raise ServeError("candidate must be a number")
    name = payload.get("name", "")
    if not isinstance(name, str):
        raise ServeError("name must be a string")
    # AnalysisJob.__post_init__ enforces the kind-specific requirements
    # (new_source/bound/candidate presence) with its own AnalysisError.
    return AnalysisJob(
        kind=kind,
        old_source=old_source,
        new_source=new_source,
        config=config,
        name=name,
        bound=bound,
        candidate=None if candidate is None else float(candidate),
    )


class _EngineBridge(threading.Thread):
    """The thread that owns the executor and drives the worker pool.

    The pool is not thread-safe, so *every* interaction with it happens
    here: the event loop posts ``submit`` / ``cancel`` messages into a
    FIFO queue, and completion callbacks fire on this thread (callers
    re-enter their loop with ``call_soon_threadsafe``).  FIFO ordering
    is what makes cancellation sound without locks — a cancel enqueued
    after its submit is always handled after the task exists.
    """

    #: Poll quantum while jobs are in flight: the loop alternates
    #: draining the inbox and waiting on worker pipes, so this bounds
    #: both submission latency and completion latency.
    POLL = 0.05
    #: Inbox wait while the pool is idle (nothing to poll for).
    IDLE_WAIT = 0.5

    def __init__(self, executor: ParallelExecutor):
        super().__init__(name="repro-serve-engine", daemon=True)
        self._executor = executor
        self._inbox: queue.SimpleQueue = queue.SimpleQueue()
        self._tasks: dict[str, object] = {}
        self._running = 0
        self._closed = False

    # -- event-loop facing API (thread-safe: only enqueues) ----------------

    def submit(self, job: AnalysisJob, on_done) -> None:
        """Request execution of ``job``; ``on_done(result)`` will fire
        exactly once on the bridge thread (synchronously for a cache
        hit) unless the job is cancelled first."""
        self._inbox.put(("submit", job, on_done))

    def cancel(self, key: str) -> None:
        """Withdraw the job under ``key`` if it is still running.  A
        completion that races the cancel wins (its ``on_done`` has
        fired); a genuinely cancelled job's worker is terminated."""
        self._inbox.put(("cancel", key, None))

    def shutdown(self) -> None:
        self._inbox.put(("stop", None, None))

    # -- bridge thread -----------------------------------------------------

    def run(self) -> None:
        while not self._closed:
            wait = self.POLL if self._running else self.IDLE_WAIT
            try:
                message = self._inbox.get(timeout=wait)
            except queue.Empty:
                message = None
            while message is not None:
                self._handle(message)
                try:
                    message = self._inbox.get_nowait()
                except queue.Empty:
                    message = None
            if not self._closed and self._running:
                self._executor.poll(timeout=self.POLL)

    def _handle(self, message) -> None:
        kind, payload, extra = message
        if kind == "stop":
            self._closed = True
        elif kind == "submit":
            self._submit(payload, extra)
        elif kind == "cancel":
            self._cancel(payload)

    def _submit(self, job: AnalysisJob, on_done) -> None:
        key = job.key

        def finished(result: JobResult) -> None:
            if self._tasks.pop(key, None) is not None:
                self._running -= 1
            on_done(result)

        task = self._executor.submit_job(job, finished)
        if task is not None:
            self._tasks[key] = task
            self._running += 1

    def _cancel(self, key: str) -> None:
        task = self._tasks.get(key)
        if task is None:
            return  # already completed (or was a cache hit)
        if self._executor.cancel_task(task):
            self._tasks.pop(key, None)
            self._running -= 1
        # else: it completed inside the cancel race and `finished` has
        # already run — nothing left to clean up.


class _InFlight:
    """One deduplicated unit of in-flight work on the event loop."""

    __slots__ = ("key", "future", "waiters")

    def __init__(self, key: str, future: asyncio.Future):
        self.key = key
        self.future = future
        self.waiters = 1


class AnalysisServer:
    """The serving front-end; see the module docstring.

    Usage::

        server = AnalysisServer(ServeConfig(port=0))
        await server.start()          # server.port is the bound port
        ...
        await server.stop()
    """

    def __init__(self, config: ServeConfig | None = None,
                 analysis: AnalysisConfig | None = None):
        self.config = config or ServeConfig()
        self.analysis = analysis or AnalysisConfig()
        self.port: int | None = None
        self.executor: ParallelExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._bridge: _EngineBridge | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inflight: dict[str, _InFlight] = {}
        self._admission: asyncio.Semaphore | None = None
        #: Requests admitted past load shedding and not yet answered
        #: (queued on the semaphore or analyzing) — what :meth:`drain`
        #: waits out.
        self._active = 0
        #: Requests queued on the admission semaphore right now; at
        #: ``config.max_queue`` new analysis requests are shed with 429.
        self._queued = 0
        self._draining = False
        #: Event-loop time the drain budget expires (set by drain()) —
        #: the Retry-After hint a draining 503 carries.
        self._drain_deadline: float | None = None
        #: Exponentially weighted /analyze latency, the throughput
        #: estimate behind the overload Retry-After hint.
        self._latency_ewma: float | None = None
        self.requests = 0
        self.coalesced = 0
        self.deadline_timeouts = 0
        self.shed = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        cache = (ResultCache(self.config.cache_dir,
                             backend=self.config.cache_backend)
                 if self.config.cache_dir else None)
        self.executor = ParallelExecutor(
            jobs=self.config.workers,
            timeout=self.config.job_timeout,
            cache=cache,
            max_retries=self.config.max_retries,
        )
        self._bridge = _EngineBridge(self.executor)
        self._bridge.start()
        self._admission = asyncio.Semaphore(self.config.max_concurrent)
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _LOG.info("serving on %s:%d (workers=%d, cache=%s)",
                  self.config.host, self.port, self.config.workers,
                  self.config.cache_dir or "off")

    async def drain(self) -> None:
        """Graceful shutdown, phase one (the SIGTERM path): stop
        admitting analysis work (new requests get ``503`` with a
        ``Retry-After``), let in-flight requests finish — bounded by
        ``config.drain_timeout`` — then close the listener.  Probe
        endpoints keep answering until the listener closes, so a load
        balancer sees the drain instead of a vanished backend.
        Idempotent; :meth:`stop` completes the teardown."""
        if self._draining:
            return
        self._draining = True
        _LOG.info("draining: %d request(s) in flight, budget %gs",
                  self._active, self.config.drain_timeout)
        deadline = self._loop.time() + self.config.drain_timeout
        self._drain_deadline = deadline
        while self._active and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        if self._active:
            _LOG.warning("drain budget expired with %d request(s) still "
                         "in flight", self._active)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def stop(self) -> None:
        _LOG.debug("stopping server on port %s", self.port)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._bridge is not None:
            self._bridge.shutdown()
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self._bridge.join(timeout=5.0)
            )
            self._bridge = None
        if self.executor is not None:
            self.executor.close()
            self.executor = None

    # -- dedupe / in-flight bookkeeping (event-loop thread only) -----------

    def _acquire(self, job: AnalysisJob) -> tuple[_InFlight, bool]:
        entry = self._inflight.get(job.key)
        if entry is not None:
            entry.waiters += 1
            self.coalesced += 1
            get_registry().counter(
                "repro_server_coalesced_total",
                "Requests served by piggybacking on in-flight work.",
            ).inc()
            return entry, False
        entry = _InFlight(job.key, self._loop.create_future())
        self._inflight[job.key] = entry
        self._bridge.submit(
            job,
            lambda result, key=job.key: self._loop.call_soon_threadsafe(
                self._resolve, key, result
            ),
        )
        return entry, True

    def _resolve(self, key: str, result: JobResult) -> None:
        entry = self._inflight.pop(key, None)
        if entry is not None and not entry.future.done():
            entry.future.set_result(result)

    def _release(self, entry: _InFlight) -> None:
        """One waiter stopped caring.  When the last waiter of an
        unfinished job lets go, the job is withdrawn through the pool's
        cancellation path — nobody is left to read the answer."""
        entry.waiters -= 1
        if entry.waiters > 0 or entry.future.done():
            return
        self._inflight.pop(entry.key, None)
        self._bridge.cancel(entry.key)
        entry.future.cancel()

    # -- request handling --------------------------------------------------

    def _deadline_of(self, payload: dict) -> float | None:
        deadline = payload.get("deadline", self.config.deadline)
        if deadline is None:
            return None
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise ServeError("deadline must be a positive number of seconds")
        return float(deadline)

    def _timeout_result(self, job: AnalysisJob, deadline: float) -> JobResult:
        self.deadline_timeouts += 1
        get_registry().counter(
            "repro_server_deadline_timeouts_total",
            "Requests that exceeded their deadline.",
        ).inc()
        _LOG.warning("deadline (%gs) expired for job %s", deadline, job.key)
        return JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="timeout",
            error_type="DeadlineExceeded",
            message=f"request exceeded its {deadline:g}s deadline",
            seconds=deadline,
        )

    def _cancelled_result(self, job: AnalysisJob, message: str) -> JobResult:
        return JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="cancelled",
            message=message,
        )

    async def _analyze(self, payload: dict) -> dict:
        job = job_from_payload(payload, self.analysis)
        deadline = self._deadline_of(payload)
        entry, created = self._acquire(job)
        try:
            result = await asyncio.wait_for(
                asyncio.shield(entry.future), deadline
            )
        except asyncio.TimeoutError:
            result = self._timeout_result(job, deadline)
        finally:
            self._release(entry)
        return {
            "job_key": job.key,
            "deduped": not created,
            "result": result.to_dict(),
        }

    async def _analyze_portfolio(self, payload: dict, mode) -> dict:
        if mode is True:
            mode = "first"
        if mode not in PORTFOLIO_MODES:
            raise ServeError(
                f"portfolio must be one of {PORTFOLIO_MODES} (or true)"
            )
        base = job_from_payload(dict(payload, kind="diff"), self.analysis)
        deadline = self._deadline_of(payload)
        jobs = portfolio_jobs(base.old_source, base.new_source,
                              base.name or "request", base=base.config)
        started = self._loop.time()
        entries = [self._acquire(job) for job in jobs]
        results: list[JobResult | None] = [None] * len(jobs)
        timed_out = False
        try:
            if mode == "best":
                try:
                    await asyncio.wait_for(
                        asyncio.gather(*(
                            asyncio.shield(entry.future)
                            for entry, _created in entries
                        )),
                        deadline,
                    )
                except asyncio.TimeoutError:
                    timed_out = True
                # Harvest every rung that did resolve — on a timeout,
                # finished rungs (a succeeded one included) are still
                # real answers; only the stragglers are abandoned.
                for index, (entry, _created) in enumerate(entries):
                    if entry.future.done() and not entry.future.cancelled():
                        results[index] = entry.future.result()
            else:
                # Ladder-order walk: identical selection to the batch
                # scheduler — rung i is only judged once every rung
                # before it has a verdict, so the chosen rung matches a
                # sequential run no matter how completions interleave.
                for index, (entry, _created) in enumerate(entries):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - (self._loop.time() - started)
                        if remaining <= 0:
                            timed_out = True
                            break
                    try:
                        results[index] = await asyncio.wait_for(
                            asyncio.shield(entry.future), remaining
                        )
                    except asyncio.TimeoutError:
                        timed_out = True
                        break
                    if results[index].succeeded:
                        break
        finally:
            for entry, _created in entries:
                self._release(entry)

        for index, (job, result) in enumerate(zip(jobs, results)):
            if result is not None:
                continue
            results[index] = self._cancelled_result(
                job,
                "request deadline expired before this rung resolved"
                if timed_out else
                "a lower portfolio rung already succeeded",
            )
        chosen = select_result(results, mode)
        data = {
            "portfolio": mode,
            "name": base.name,
            "status": "timeout" if timed_out and chosen is None else "ok",
            "deduped": any(not created for _entry, created in entries),
            "chosen_rung": None if chosen is None else results.index(chosen),
            "threshold": None if chosen is None else chosen.threshold,
            "rungs": [result.to_dict() for result in results],
        }
        if timed_out and chosen is None:
            self.deadline_timeouts += 1
            get_registry().counter(
                "repro_server_deadline_timeouts_total",
                "Requests that exceeded their deadline.",
            ).inc()
            data["message"] = (
                f"request exceeded its {deadline:g}s deadline before any "
                "rung succeeded"
            )
        return data

    def _healthz(self) -> dict:
        executor = self.executor
        # Both nested blocks keep their schema before warm-up (zeroed
        # rather than null/empty) so scrapers never special-case boot.
        return {
            "status": "draining" if self._draining else "ok",
            "inflight": len(self._inflight),
            "requests": self.requests,
            "coalesced": self.coalesced,
            "deadline_timeouts": self.deadline_timeouts,
            "shed": self.shed,
            "draining": self._draining,
            "workers": self.config.workers,
            "engine": (executor.stats.as_dict() if executor
                       else ExecutorStats().as_dict()),
            "pool": (executor.pool_health() if executor
                     else WorkerPool.empty_health(self.config.workers)),
            "cache": (executor.cache.stats()
                      if executor and executor.cache
                      else ResultCache.empty_stats()),
        }

    def _metrics_text(self) -> str:
        """Prometheus exposition; point-in-time gauges (in-flight count,
        engine counters, on-disk cache shape) are refreshed here so the
        scrape always reflects the current state."""
        registry = get_registry()
        registry.gauge(
            "repro_server_inflight", "Deduplicated jobs in flight.",
        ).set(len(self._inflight))
        registry.gauge(
            "repro_server_workers", "Configured worker processes.",
        ).set(self.config.workers)
        registry.gauge(
            "repro_server_draining",
            "1 while the server is draining (SIGTERM grace), else 0.",
        ).set(1 if self._draining else 0)
        registry.gauge(
            "repro_server_queued",
            "Requests waiting on the admission semaphore right now.",
        ).set(self._queued)
        # Materialize zero samples so dashboards see the shed counter
        # (both reasons) from the first scrape, not the first incident.
        shed = registry.counter(
            "repro_server_shed_total",
            "Analysis requests rejected by admission control, by reason.",
            ("reason",),
        )
        shed.inc(0, reason="overloaded")
        shed.inc(0, reason="draining")
        engine = (self.executor.stats.as_dict() if self.executor
                  else ExecutorStats().as_dict())
        for key, value in engine.items():
            registry.gauge(
                f"repro_engine_{key}",
                f"Executor stat {key!r}, mirrored at scrape time.",
            ).set(value)
        cache_stats = (self.executor.cache.stats()
                       if self.executor and self.executor.cache
                       else ResultCache.empty_stats())
        for key, value in cache_stats.items():
            registry.gauge(
                f"repro_cache_{key}",
                f"Result-cache stat {key!r}, mirrored at scrape time.",
            ).set(value)
        pool = (self.executor.pool_health() if self.executor
                else WorkerPool.empty_health(self.config.workers))
        for key, value in pool.items():
            registry.gauge(
                f"repro_pool_{key}",
                f"Worker-pool supervision stat {key!r}, mirrored at "
                "scrape time.",
            ).set(value)
        return registry.render_prometheus()

    # -- HTTP plumbing -----------------------------------------------------

    def _retry_after_seconds(self, why: str) -> int:
        """An honest ``Retry-After`` hint, not a constant.

        Draining: the remaining drain budget — once it expires the
        listener is gone and a sooner retry just burns a connection on
        this dying process.  Overload: the estimated time for the
        current queue to drain at observed throughput (EWMA request
        latency x backlog / concurrency), so a deep queue pushes
        clients further away than a blip.  Clamped to [1, 60]s.
        """
        if why == "draining":
            remaining = self.config.drain_timeout
            if self._drain_deadline is not None and self._loop is not None:
                remaining = self._drain_deadline - self._loop.time()
            return max(1, min(60, math.ceil(remaining)))
        latency = self._latency_ewma if self._latency_ewma else 1.0
        backlog = self._queued + 1  # the retry would wait behind the queue
        wait = backlog * latency / max(1, self.config.max_concurrent)
        return max(1, min(60, math.ceil(wait)))

    def _shed(self, why: str, status: int) -> tuple[int, dict, dict]:
        """An admission rejection: 429 (overload) or 503 (draining),
        always with a derived ``Retry-After`` hint."""
        self.shed += 1
        get_registry().counter(
            "repro_server_shed_total",
            "Analysis requests rejected by admission control, by reason.",
            ("reason",),
        ).inc(reason=why)
        retry_after = self._retry_after_seconds(why)
        _LOG.warning("shedding analyze request (%s): %d analyzing, "
                     "%d queued, Retry-After %ds", why,
                     self._active - self._queued, self._queued, retry_after)
        return status, {"error": f"server {why}; retry later"}, \
            {"Retry-After": str(retry_after)}

    # -- cache federation endpoints ----------------------------------------

    @property
    def _cache(self) -> ResultCache | None:
        return self.executor.cache if self.executor else None

    def _cache_delta(self, query: str) -> tuple[int, dict]:
        """``GET /cache/delta?since=<ts>``: the trusted entries written
        after ``since`` plus the new watermark — the federation pull
        leg.  The ``cache.delta_drop`` fault site turns the response
        into a retryable 503, modelling a node whose delta never
        arrives."""
        if self._cache is None:
            return 404, {"error": "this node serves without a cache"}
        if fault_point("cache.delta_drop", name="/cache/delta") is not None:
            return 503, {"error": "cache delta dropped by fault plan"}
        since = 0.0
        for pair in query.split("&"):
            name, _sep, value = pair.partition("=")
            if name == "since":
                try:
                    since = float(value)
                except ValueError:
                    return 400, {"error": "since must be a number"}
        watermark, records = self._cache.delta_since(since)
        return 200, {"watermark": watermark, "records": records,
                     "count": len(records)}

    def _cache_merge(self, body: bytes) -> tuple[int, dict]:
        """``POST /cache/merge`` with ``{"records": [...]}``: store the
        trusted records this node lacks — the federation push leg.
        Idempotent (first writer wins on content-addressed keys), so
        the resilient client may retry it freely.  The
        ``cache.merge_drop`` site sheds it with a retryable 503."""
        if self._cache is None:
            return 404, {"error": "this node serves without a cache"}
        if fault_point("cache.merge_drop", name="/cache/merge") is not None:
            return 503, {"error": "cache merge dropped by fault plan"}
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as error:
            return 400, {"error": f"invalid JSON body: {error}"}
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("records"), list):
            return 400, {"error": 'body must be {"records": [...]}'}
        applied, skipped = self._cache.apply_delta(payload["records"])
        return 200, {"applied": applied, "skipped": skipped}

    async def _route(self, method: str, path: str, body: bytes,
                     query: str = ""
                     ) -> tuple[int, dict | str] | tuple[int, dict | str, dict]:
        registry = get_registry()
        registry.counter(
            "repro_http_requests_total", "HTTP requests received, by path.",
            ("path",),
        ).inc(path=path if path in _KNOWN_PATHS else "other")
        if path == "/cache/delta":
            if method != "GET":
                return 405, {"error": "use GET for /cache/delta"}
            return self._cache_delta(query)
        if path == "/cache/merge":
            if method != "POST":
                return 405, {"error": "use POST for /cache/merge"}
            return self._cache_merge(body)
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET for /healthz"}
            return 200, self._healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET for /metrics"}
            return 200, self._metrics_text()
        if path == "/analyze":
            if method != "POST":
                return 405, {"error": "use POST for /analyze"}
            if self._draining:
                return self._shed("draining", 503)
            if (self._admission.locked()
                    and self._queued >= self.config.max_queue):
                return self._shed("overloaded", 429)
            try:
                payload = json.loads(body or b"null")
            except json.JSONDecodeError as error:
                return 400, {"error": f"invalid JSON body: {error}"}
            self.requests += 1
            started = time.perf_counter()
            self._active += 1
            self._queued += 1
            try:
                await self._admission.acquire()
            finally:
                self._queued -= 1
            try:
                mode = payload.get("portfolio") \
                    if isinstance(payload, dict) else None
                if mode:
                    return 200, await self._analyze_portfolio(payload, mode)
                return 200, await self._analyze(payload)
            except ReproError as error:
                _LOG.warning("rejected analyze request: %s", error)
                return 400, {"error": str(error)}
            finally:
                self._admission.release()
                self._active -= 1
                elapsed = time.perf_counter() - started
                self._latency_ewma = (
                    elapsed if self._latency_ewma is None
                    else 0.8 * self._latency_ewma + 0.2 * elapsed
                )
                registry.histogram(
                    "repro_http_request_seconds",
                    "Wall-clock latency of /analyze requests.",
                ).observe(elapsed)
        return 404, {"error": f"unknown path {path!r}"}

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        await handle_http_client(reader, writer, self._route,
                                 drop_site="server.drop")


async def serve_forever(config: ServeConfig | None = None,
                        analysis: AnalysisConfig | None = None,
                        ready=None) -> int:
    """Run a server until SIGINT (immediate) or SIGTERM (graceful
    drain) — the CLI entry point's core.

    SIGTERM is the orchestrator's "please leave the rotation" signal:
    the server sheds new analysis work with 503, finishes what is in
    flight (bounded by ``config.drain_timeout``), closes the listener,
    and only then tears the engine down.  SIGINT (an operator's ^C)
    stops immediately.

    ``ready`` (optional callable) receives the started server — used by
    the CLI to print the bound address and by tests to capture the
    ephemeral port.
    """
    import signal as signal_module

    server = AnalysisServer(config, analysis)
    await server.start()
    if ready is not None:
        ready(server)
    stop = asyncio.Event()
    drain = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum, event in ((signal_module.SIGINT, stop),
                          (signal_module.SIGTERM, drain)):
        try:
            loop.add_signal_handler(signum, event.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    waits = [asyncio.ensure_future(stop.wait()),
             asyncio.ensure_future(drain.wait())]
    try:
        await asyncio.wait(waits, return_when=asyncio.FIRST_COMPLETED)
        if drain.is_set() and not stop.is_set():
            await server.drain()
    finally:
        for future in waits:
            future.cancel()
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()
    return 0
