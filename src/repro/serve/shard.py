"""Sharding a batch across machines, and merging the slices back.

The partition itself lives next to batch discovery
(:func:`repro.engine.batch.shard_pairs`): every pair is assigned to
exactly one of ``n`` shards by the content-addressed hash of its base
``diff`` job, so any process that sees the same directory and base
config computes the same disjoint slices with no coordination.  This
module is the *other* half of the workflow:

- :func:`merge_reports` folds the JSON reports of all shards back into
  one batch report, validating that the shards really partition the
  batch (same shard count, distinct indices, disjoint pairs) and
  propagating ``partial`` markers from interrupted shards;
- :func:`canonical_report` / :func:`canonical_json` strip the volatile
  fields of a report (wall seconds, per-phase timings, cache-hit
  counters, tracebacks) so two reports can be compared *byte for
  byte*.  The determinism guarantee — asserted by the test suite and
  the CI smoke job — is that ``batch --shard k/n`` over all ``k``,
  merged, is canonically byte-identical to one unsharded ``--jobs 1``
  run;
- cache folding is :meth:`repro.engine.cache.ResultCache.merge_from`
  (atomic multi-writer tmp-file + rename), exposed here through
  :func:`merge_caches`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.engine.cache import ResultCache
from repro.errors import AnalysisError

#: Result fields that legitimately differ between two runs of the same
#: job (wall-clock measurements, machine-local tracebacks, cache state,
#: worker metrics-snapshot deltas, retry attempts — all machine
#: conditions, not analysis outcomes).
_VOLATILE_RESULT_FIELDS = ("seconds", "timings", "traceback", "cached",
                           "metrics", "attempts")

#: Stats counters that depend on cache state / wall clock / machine
#: health rather than on what was analyzed.
_VOLATILE_STATS_FIELDS = ("seconds", "cache_hits", "retries")


def parse_shard_spec(spec: str) -> tuple[int, int]:
    """Parse a ``"k/n"`` shard spec into ``(k, n)``."""
    try:
        index_text, count_text = spec.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise AnalysisError(
            f"shard spec must look like K/N (e.g. 0/2), got {spec!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise AnalysisError(
            f"shard spec needs 0 <= K < N, got {spec!r}"
        )
    return index, count


# -- canonical (byte-comparable) rendering --------------------------------

def _canonical_result(result: dict[str, Any]) -> dict[str, Any]:
    return {key: value for key, value in sorted(result.items())
            if key not in _VOLATILE_RESULT_FIELDS}


def _canonical_portfolio(portfolio: dict[str, Any]) -> dict[str, Any]:
    data = dict(portfolio)
    data["rungs"] = [_canonical_result(r) for r in portfolio.get("rungs", [])]
    refutation = portfolio.get("refutation")
    data["refutation"] = (None if refutation is None
                          else _canonical_result(refutation))
    return data


def canonical_report(report: dict[str, Any]) -> dict[str, Any]:
    """The deterministic core of a batch-report dict.

    Everything that depends only on *what was analyzed* survives
    (names, job keys, statuses, outcomes, thresholds, chosen rungs);
    everything that depends on when/where it ran is dropped.  Two runs
    over the same pairs and config — sharded or not, cached or not —
    canonicalize to identical dicts.
    """
    data = {key: value for key, value in sorted(report.items())
            if key not in ("seconds", "shard")}
    stats = dict(report.get("stats", {}))
    for field in _VOLATILE_STATS_FIELDS:
        stats.pop(field, None)
    data["stats"] = stats
    data["results"] = [_canonical_result(r)
                       for r in report.get("results", [])]
    if "portfolios" in report:
        data["portfolios"] = [_canonical_portfolio(p)
                              for p in report["portfolios"]]
    return data


def canonical_json(report: dict[str, Any]) -> str:
    """Byte-comparable JSON rendering of :func:`canonical_report`."""
    return json.dumps(canonical_report(report), indent=2, sort_keys=True)


# -- merging shard reports ------------------------------------------------

def _shard_of(report: dict[str, Any], position: int) -> tuple[int, int] | None:
    spec = report.get("shard")
    if spec is None:
        return None
    try:
        return parse_shard_spec(spec)
    except AnalysisError:
        raise AnalysisError(
            f"report #{position} carries a malformed shard marker "
            f"{spec!r}"
        ) from None


def merge_reports(reports: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold shard batch-report dicts into one unsharded report dict.

    Validates the shard markers (one consistent ``n``, distinct ``k``,
    disjoint pair sets) and reassembles results in pair-name order —
    the order an unsharded run produces, because batch discovery sorts
    pairs by name.  Missing shards or shards flushed by an interrupted
    run leave the merged report marked ``partial`` (with the missing
    indices listed) instead of failing: a killed shard's flushed slice
    is still worth folding in.
    """
    if not reports:
        raise AnalysisError("nothing to merge: no shard reports given")

    counts = set()
    seen_indices: dict[int, int] = {}
    for position, report in enumerate(reports):
        if "missing_shards" in report:
            # An already-merged partial report: its stats are sums over
            # several shards, so folding it in again would double-count
            # silently.  Merge once from the original shard reports
            # (the missing ones rerun) instead of merging a merge.
            missing_marker = ",".join(map(str, report["missing_shards"]))
            raise AnalysisError(
                f"report #{position} is itself a merged partial report "
                f"(missing shard(s) {missing_marker}); re-run the missing "
                "shards and merge all original shard reports in one pass "
                "instead of merging a merge"
            )
        shard = _shard_of(report, position)
        if shard is None:
            raise AnalysisError(
                f"report #{position} has no shard marker (was it produced "
                "by batch --shard?)"
            )
        index, count = shard
        counts.add(count)
        if index in seen_indices:
            raise AnalysisError(
                f"shard {index} appears twice (reports "
                f"#{seen_indices[index]} and #{position})"
            )
        seen_indices[index] = position
    if len(counts) != 1:
        raise AnalysisError(
            f"reports disagree on the shard count: {sorted(counts)}"
        )
    count = counts.pop()
    missing = sorted(set(range(count)) - set(seen_indices))

    names_seen: dict[str, int] = {}
    for position, report in enumerate(reports):
        for name in report.get("pair_names", []):
            if name in names_seen:
                raise AnalysisError(
                    f"pair {name!r} claimed by two shards (reports "
                    f"#{names_seen[name]} and #{position}) — were they "
                    "run with different base configs?"
                )
            names_seen[name] = position

    portfolio_mode = any("portfolios" in report for report in reports)
    if portfolio_mode:
        # A merged portfolio report is rebuilt from per-pair rung lists,
        # so a shard that ran without --portfolio (flat results only)
        # cannot be folded in — its answers would silently vanish.
        flat_only = [position for position, report in enumerate(reports)
                     if "portfolios" not in report and report.get("results")]
        if flat_only:
            raise AnalysisError(
                "cannot merge portfolio and non-portfolio shard reports: "
                f"report(s) #{', #'.join(map(str, flat_only))} carry flat "
                "results only (rerun them with --portfolio, or rerun the "
                "others without)"
            )
    portfolios = sorted(
        (p for report in reports for p in report.get("portfolios", [])),
        key=lambda p: p["name"],
    )
    if portfolio_mode:
        # Rung order inside a pair is ladder order and must survive the
        # merge; the flat results list is rebuilt pair by pair, exactly
        # how an unsharded portfolio run flattens it.
        results = [rung for p in portfolios for rung in p["rungs"]]
    else:
        results = sorted(
            (r for report in reports for r in report.get("results", [])),
            key=lambda r: (r["name"], r["job_key"]),
        )

    stats: dict[str, float] = {}
    for report in reports:
        for key, value in sorted(report.get("stats", {}).items()):
            stats[key] = stats.get(key, 0) + value

    merged: dict[str, Any] = {
        "directory": reports[0].get("directory", ""),
        "seconds": round(sum(r.get("seconds", 0.0) for r in reports), 3),
        "shard": None,
        "partial": bool(missing) or any(r.get("partial") for r in reports),
        "pairs_total": max(r.get("pairs_total", 0) for r in reports),
        "pair_names": sorted(names_seen),
        "stats": stats,
        "results": results,
    }
    if portfolio_mode:
        merged["portfolios"] = portfolios
    if missing:
        merged["missing_shards"] = missing
    return merged


def report_ok(report: dict[str, Any]) -> bool:
    """:attr:`repro.engine.batch.BatchReport.ok`, over a report dict.

    Mirrors the object property so merged (dict-form) reports gate CI
    the same way live reports do: execution failures fail the batch,
    sound ✗ answers do not, and a portfolio pair absorbs losing-rung
    failures as long as it produced a winner.
    """
    portfolios = report.get("portfolios")
    if portfolios:
        return all(
            p.get("chosen_rung") is not None
            or not any(r["status"] in ("error", "timeout")
                       for r in p.get("rungs", []))
            for p in portfolios
        )
    return not any(r["status"] in ("error", "timeout")
                   for r in report.get("results", []))


def merge_caches(destination: str, sources: list[str],
                 overwrite: bool = False,
                 backend: str = "auto") -> int:
    """Fold shard cache directories into ``destination``; returns the
    number of entries copied.  Atomic per entry — safe to run while
    other writers target the same destination.  Sources may be either
    cache format; the destination keeps its existing format
    (``backend="auto"``: warm only when its ``warm.log`` exists)."""
    cache = ResultCache(destination, backend=backend)
    return sum(cache.merge_from(source, overwrite=overwrite)
               for source in sources)
