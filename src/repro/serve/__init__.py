"""Serving & sharding layer over the analysis engine.

- :mod:`repro.serve.server` — the asyncio JSON-over-HTTP front-end
  (:class:`AnalysisServer`): content-hash request dedupe against
  in-flight work and the persistent result cache, a thread-bridge onto
  the engine's long-lived worker pool, per-request deadlines riding the
  scheduler's cancellation path;
- :mod:`repro.serve.shard` — merging disjoint ``batch --shard k/n``
  slices (reports and caches) back into one batch, with a canonical
  byte-comparable report rendering backing the determinism guarantee.
"""

from repro.serve.server import (
    AnalysisServer,
    ServeError,
    job_from_payload,
    serve_forever,
)
from repro.serve.shard import (
    canonical_json,
    canonical_report,
    merge_caches,
    merge_reports,
    parse_shard_spec,
    report_ok,
)

__all__ = [
    "AnalysisServer",
    "ServeError",
    "job_from_payload",
    "serve_forever",
    "canonical_json",
    "canonical_report",
    "merge_caches",
    "merge_reports",
    "parse_shard_spec",
    "report_ok",
]
