"""Analysis configuration.

One dataclass collects every knob of the synthesis pipeline so that the
benchmark harness and ablation benches can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError


@dataclass
class AnalysisConfig:
    """Configuration of the simultaneous PF/anti-PF synthesis.

    Attributes
    ----------
    degree:
        Maximal degree ``d`` of the potential templates (paper default
        2; the 'nested' benchmark needs 3).
    max_products:
        Handelman parameter ``K``: products of at most this many premise
        inequalities (paper default 2).
    lp_backend:
        ``"scipy"`` (float, HiGHS — fast) or ``"exact"`` (rational
        simplex — exact but slower).
    widening_delay / narrowing_passes:
        Invariant-engine tuning.
    template_includes_params_only:
        When True, templates at the initial/terminal location still use
        all variables; no restriction is applied.  (Reserved for
        experimentation; default False means full templates everywhere.)
    check_certificates:
        Re-verify synthesized certificates (empirical run-based check).
    check_tolerance:
        Numeric slack allowed when checking float-backend certificates.
    """

    degree: int = 2
    max_products: int = 2
    lp_backend: str = "scipy"
    widening_delay: int = 3
    narrowing_passes: int = 2
    check_certificates: bool = False
    check_tolerance: float = 1e-6

    def __post_init__(self):
        if self.degree < 0:
            raise AnalysisError("degree must be nonnegative")
        if self.max_products < 1:
            raise AnalysisError("max_products (K) must be at least 1")
        if self.lp_backend not in ("scipy", "exact"):
            raise AnalysisError(
                f"unknown lp_backend {self.lp_backend!r} (use 'scipy' or 'exact')"
            )


DEFAULT_CONFIG = AnalysisConfig()
