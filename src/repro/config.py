"""Analysis configuration.

One dataclass collects every knob of the synthesis pipeline so that the
benchmark harness and ablation benches can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError


@dataclass
class AnalysisConfig:
    """Configuration of the simultaneous PF/anti-PF synthesis.

    Attributes
    ----------
    degree:
        Maximal degree ``d`` of the potential templates (paper default
        2; the 'nested' benchmark needs 3).
    max_products:
        Handelman parameter ``K``: products of at most this many premise
        inequalities (paper default 2).
    lp_backend:
        Any registered LP backend name: ``"scipy"`` (float, HiGHS —
        fast), ``"exact"`` (sparse revised simplex over rationals),
        ``"exact-warm"`` (float warm start + rational certification —
        the fast exact rung) or ``"exact-dense"`` (the seed's dense
        tableau simplex, kept as baseline/oracle).
    lp_incremental:
        Reuse one factorized basis across LP re-solves that share a
        constraint system (the refutation witness loop, the threshold
        search) via :class:`~repro.lp.dual.IncrementalLP` when the
        backend is exact.  Off = solve every LP cold, the pre-LU
        behaviour kept for A/B benchmarking; answers are bit-identical
        either way (LP optima are unique).
    widening_delay / narrowing_passes:
        Invariant-engine tuning.
    template_includes_params_only:
        When True, templates at the initial/terminal location still use
        all variables; no restriction is applied.  (Reserved for
        experimentation; default False means full templates everywhere.)
    check_certificates:
        Re-verify synthesized certificates (empirical run-based check).
    check_tolerance:
        Numeric slack allowed when checking float-backend certificates.
    check_seed / check_samples / check_max_range:
        Sampling parameters of the run-based certificate check: RNG
        seed, number of sampled Θ0 inputs, and the per-variable range
        cap used when an input box is unbounded.
    """

    degree: int = 2
    max_products: int = 2
    lp_backend: str = "scipy"
    lp_incremental: bool = True
    widening_delay: int = 3
    narrowing_passes: int = 2
    check_certificates: bool = False
    check_tolerance: float = 1e-6
    check_seed: int = 2022
    check_samples: int = 5
    check_max_range: int = 4

    def __post_init__(self):
        if self.degree < 0:
            raise AnalysisError("degree must be nonnegative")
        if self.max_products < 1:
            raise AnalysisError("max_products (K) must be at least 1")
        # Local import: repro.lp pulls in the polynomial layer, which
        # must not become an import-time dependency of plain configs.
        from repro.lp.backend import available_backends

        if self.lp_backend not in available_backends():
            raise AnalysisError(
                f"unknown lp_backend {self.lp_backend!r} "
                f"(available: {sorted(available_backends())})"
            )
        if self.check_samples < 1:
            raise AnalysisError("check_samples must be at least 1")
        if self.check_max_range < 1:
            raise AnalysisError("check_max_range must be at least 1")


DEFAULT_CONFIG = AnalysisConfig()


@dataclass
class EngineConfig:
    """Configuration of the parallel analysis engine (:mod:`repro.engine`).

    Attributes
    ----------
    jobs:
        Worker processes.  ``1`` runs inline (no pool), byte-identical
        to the sequential path.
    timeout:
        Per-job wall-clock budget in seconds (``None`` = unlimited).
        Expired jobs surface as structured ``"timeout"`` results.
    cache_dir:
        Directory of the persistent result cache (``None`` disables
        caching).
    cache_backend:
        Disk tier of the result cache: ``"dir"`` (legacy one file per
        entry), ``"warm"`` (single append-log with an index; opening
        it migrates any legacy entries) or ``"auto"`` (warm when a
        ``warm.log`` already exists).
    portfolio:
        Race each pair through the escalating configuration ladder
        instead of a single configuration.
    portfolio_mode:
        ``"first"`` (first succeeding rung wins, losers cancelled) or
        ``"best"`` (minimal threshold among succeeding rungs).
    max_inflight_pairs:
        In ``first``-mode portfolio batches, how many pairs' escalation
        ladders the scheduler keeps in flight at once on the shared
        worker pool.  ``None`` (default) sizes automatically from the
        pool: enough pairs to keep every worker busy without flooding
        the queue.  Has no effect on selection — chosen rungs are
        deterministic regardless.
    refute:
        Portfolio mode only: after selection, probe every chosen
        threshold ``T`` with a ``refute`` job at candidate
        ``T - refute_margin`` (winning rung's template shape, exact
        backend).  A refuted probe certifies the threshold tight to
        within the margin; see ``PortfolioResult.tight``.
    refute_margin:
        Slack allowed by the tightness probe (default 1.0 — exactly
        tight for integer-cost programs).
    shard:
        ``(k, n)``: analyze only the pairs that the deterministic
        job-hash partition assigns to shard ``k`` of ``n`` (see
        :func:`repro.engine.batch.shard_pairs`).  ``None`` runs every
        pair.  Disjoint shard runs merged with
        :func:`repro.serve.shard.merge_reports` reproduce the
        unsharded report.
    max_retries:
        Extra executions granted to a job that failed *transiently*
        (worker crash, hang, OS-level error, timeout) — deterministic
        analysis errors are never retried.  Content-addressed jobs make
        re-execution idempotent, so retries never change a canonical
        report byte.  ``0`` disables the retry layer.
    hang_timeout:
        Kill a pool worker whose running job sent no heartbeat for this
        many seconds and retry the job (``None`` = hang detection off,
        the default: a legitimate job inside one long uninterruptible
        C-level LP solve is silent too).
    quarantine_after:
        Park one worker slot after this many *consecutive* worker
        crashes, so a poisoned machine degrades to a smaller pool
        instead of a crash loop (the pool never shrinks below 1).
    """

    jobs: int = 1
    timeout: float | None = None
    cache_dir: str | None = None
    cache_backend: str = "dir"
    portfolio: bool = False
    portfolio_mode: str = "first"
    max_inflight_pairs: int | None = None
    refute: bool = False
    refute_margin: float = 1.0
    shard: tuple[int, int] | None = None
    max_retries: int = 2
    hang_timeout: float | None = None
    quarantine_after: int = 3

    def __post_init__(self):
        if self.jobs < 1:
            raise AnalysisError("jobs must be at least 1")
        if self.timeout is not None and self.timeout <= 0:
            raise AnalysisError("timeout must be positive (or None)")
        if self.cache_backend not in ("dir", "warm", "auto"):
            raise AnalysisError(
                f"unknown cache_backend {self.cache_backend!r} "
                "(use 'dir', 'warm' or 'auto')"
            )
        if self.max_retries < 0:
            raise AnalysisError("max_retries must be >= 0")
        if self.hang_timeout is not None and self.hang_timeout <= 0:
            raise AnalysisError("hang_timeout must be positive (or None)")
        if self.quarantine_after < 1:
            raise AnalysisError("quarantine_after must be at least 1")
        if self.portfolio_mode not in ("first", "best"):
            raise AnalysisError(
                f"unknown portfolio_mode {self.portfolio_mode!r} "
                "(use 'first' or 'best')"
            )
        if self.max_inflight_pairs is not None and self.max_inflight_pairs < 1:
            raise AnalysisError(
                "max_inflight_pairs must be at least 1 (or None for auto)"
            )
        if self.refute_margin <= 0:
            raise AnalysisError("refute_margin must be positive")
        if self.shard is not None:
            index, count = self.shard
            if count < 1 or not 0 <= index < count:
                raise AnalysisError(
                    f"shard must be (k, n) with 0 <= k < n, got {self.shard}"
                )


@dataclass
class ServeConfig:
    """Configuration of the async serving front-end (:mod:`repro.serve`).

    Attributes
    ----------
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port (the bound
        port is reported by :attr:`~repro.serve.AnalysisServer.port`).
    workers:
        Worker processes of the server's long-lived analysis pool.
    max_concurrent:
        Cap on requests being analyzed at once; requests beyond it
        queue on the server's admission semaphore.
    deadline:
        Default per-request wall-clock budget in seconds (``None`` =
        unlimited; a request may override it).  An expired request gets
        a structured ``"timeout"`` response and its job — unless other
        requests still share it — is cancelled through the worker
        pool's cancellation path, so the worker slot is reclaimed
        immediately.
    job_timeout:
        Per-job budget enforced *inside* workers (the executor's
        ``SIGALRM`` path), independent of request deadlines.
    cache_dir:
        Persistent result cache shared by all requests (``None``
        disables caching).
    cache_backend:
        Disk tier of the result cache — same semantics as
        :attr:`EngineConfig.cache_backend`.
    max_queue:
        Admission control: when ``max_concurrent`` slots are all taken,
        at most this many further requests may queue for one; beyond
        that the server *sheds load* — new analysis requests get an
        immediate ``429`` with a ``Retry-After`` hint instead of
        queueing unboundedly.
    drain_timeout:
        Graceful-shutdown budget: on SIGTERM the server stops accepting
        work (new analysis requests get ``503``), finishes in-flight
        requests for up to this many seconds, then closes the listener.
    max_retries:
        Transient-failure retry budget of the server's executor (same
        semantics as :attr:`EngineConfig.max_retries`).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    max_concurrent: int = 16
    deadline: float | None = None
    job_timeout: float | None = None
    cache_dir: str | None = ".repro-cache"
    cache_backend: str = "dir"
    max_queue: int = 64
    drain_timeout: float = 10.0
    max_retries: int = 2

    def __post_init__(self):
        if not 0 <= self.port <= 65535:
            raise AnalysisError("port must be in [0, 65535]")
        if self.cache_backend not in ("dir", "warm", "auto"):
            raise AnalysisError(
                f"unknown cache_backend {self.cache_backend!r} "
                "(use 'dir', 'warm' or 'auto')"
            )
        if self.workers < 1:
            raise AnalysisError("workers must be at least 1")
        if self.max_concurrent < 1:
            raise AnalysisError("max_concurrent must be at least 1")
        if self.deadline is not None and self.deadline <= 0:
            raise AnalysisError("deadline must be positive (or None)")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise AnalysisError("job_timeout must be positive (or None)")
        if self.max_queue < 0:
            raise AnalysisError("max_queue must be >= 0")
        if self.drain_timeout <= 0:
            raise AnalysisError("drain_timeout must be positive")
        if self.max_retries < 0:
            raise AnalysisError("max_retries must be >= 0")


@dataclass
class CoordConfig:
    """Configuration of the multi-node batch coordinator
    (:mod:`repro.coord`).

    Attributes
    ----------
    host / port:
        Coordinator listen address (``port=0`` binds an ephemeral
        port).
    nodes:
        Worker-node URLs registered at startup (more may join at run
        time through ``POST /nodes``).
    node_concurrency:
        Concurrent analysis requests the dispatcher keeps open against
        each node — match it to the node's ``--workers``.
    min_nodes:
        Capacity floor: when fewer nodes are eligible for work (live or
        suspect), a running batch degrades gracefully — it stops
        dispatching and returns a partial, mergeable report instead of
        spinning forever against a dead cluster.
    heartbeat_interval:
        Seconds between ``/healthz`` probes of every registered node.
    dead_after:
        Consecutive missed heartbeats before a node is declared dead
        (its pending work is reassigned to healthy nodes).
    quarantine_after:
        Consecutive exhausted-retry request failures before a node is
        quarantined (no new work until ``recover_after`` clean
        heartbeats clear it).
    recover_after:
        Clean heartbeats a quarantined node needs to rejoin.
    evict_after:
        Seconds a node may stay dead before it is evicted from the
        registry entirely.
    request_deadline:
        Per-request wall-clock budget of the coordinator's HTTP client
        (each analysis request, each retry attempt).
    client_retries:
        Transient-failure retry budget per node request (connection
        refused/reset, timeout, truncated body, 429/503 shedding).
    backoff_base:
        First retry backoff in seconds; subsequent retries double it
        (bounded, with seeded jitter).
    client_seed:
        Seed of the retry-jitter RNG — two coordinator runs with the
        same seed sleep the same backoff schedule.
    steal_after:
        Seconds a pair must already be in flight on another node before
        an idle node may *steal* a duplicate execution of it (the
        straggler hedge; duplicates coalesce first-result-wins, and the
        nodes' own cache/in-flight dedupe absorbs the extra work).
    drain_timeout:
        SIGTERM grace: finish the running batch for up to this many
        seconds before the listener closes.
    """

    host: str = "127.0.0.1"
    port: int = 8790
    nodes: tuple[str, ...] = ()
    node_concurrency: int = 2
    min_nodes: int = 1
    heartbeat_interval: float = 0.5
    dead_after: int = 3
    quarantine_after: int = 3
    recover_after: int = 2
    evict_after: float = 300.0
    request_deadline: float = 120.0
    client_retries: int = 3
    backoff_base: float = 0.05
    client_seed: int = 2022
    steal_after: float = 0.25
    drain_timeout: float = 10.0

    def __post_init__(self):
        if not 0 <= self.port <= 65535:
            raise AnalysisError("port must be in [0, 65535]")
        if self.node_concurrency < 1:
            raise AnalysisError("node_concurrency must be at least 1")
        if self.min_nodes < 1:
            raise AnalysisError("min_nodes must be at least 1")
        if self.heartbeat_interval <= 0:
            raise AnalysisError("heartbeat_interval must be positive")
        if self.dead_after < 1:
            raise AnalysisError("dead_after must be at least 1")
        if self.quarantine_after < 1:
            raise AnalysisError("quarantine_after must be at least 1")
        if self.recover_after < 1:
            raise AnalysisError("recover_after must be at least 1")
        if self.evict_after <= 0:
            raise AnalysisError("evict_after must be positive")
        if self.request_deadline <= 0:
            raise AnalysisError("request_deadline must be positive")
        if self.client_retries < 0:
            raise AnalysisError("client_retries must be >= 0")
        if self.backoff_base <= 0:
            raise AnalysisError("backoff_base must be positive")
        if self.steal_after < 0:
            raise AnalysisError("steal_after must be >= 0")
        if self.drain_timeout <= 0:
            raise AnalysisError("drain_timeout must be positive")


@dataclass
class ObsConfig:
    """Observability switches (:mod:`repro.obs`).

    Deliberately **not** part of :class:`AnalysisConfig`: observability
    must never perturb analysis results, so its knobs stay out of the
    content-addressed job hash — turning tracing on cannot invalidate a
    cache entry or change a report byte.

    Attributes
    ----------
    trace_file:
        Write Chrome ``trace_event`` JSONL spans here (one complete
        event per line; load in Perfetto / ``chrome://tracing``).
        ``None`` disables tracing.
    log_level:
        Stdlib logging level name for the ``repro`` logger tree
        (``"debug"``, ``"info"``, ...).  ``None`` leaves logging
        unconfigured (silent) unless ``REPRO_LOG`` is set.
    """

    trace_file: str | None = None
    log_level: str | None = None

    def __post_init__(self):
        if self.log_level is not None:
            from repro.obs.log import parse_level

            try:
                parse_level(self.log_level)
            except ValueError as error:
                raise AnalysisError(str(error)) from None

    def activate(self) -> None:
        """Export the switches to this process *and* its future worker
        processes (both ride on environment variables, which fork/spawn
        children inherit)."""
        from repro.obs import setup_logging, trace_enable
        from repro.obs.log import LOG_ENV

        if self.trace_file is not None:
            trace_enable(self.trace_file)
        if self.log_level is not None:
            import os

            os.environ[LOG_ENV] = self.log_level
            setup_logging(self.log_level)
        else:
            from repro.obs import setup_from_env

            setup_from_env()


@dataclass
class LintConfig:
    """Knobs of the ``repro-diffcost lint`` static-analysis gate
    (:mod:`repro.lint`).

    Attributes
    ----------
    format:
        Output rendering — ``"text"`` (one finding per line plus a
        summary) or ``"json"`` (machine-readable findings + summary).
    baseline:
        Path of a baseline ratchet file; its fingerprints are
        tolerated, anything new fails.  ``None`` means no ratchet.
    show_suppressed:
        Also print pragma-suppressed findings (text format only).
    """

    format: str = "text"
    baseline: str | None = None
    show_suppressed: bool = False

    def __post_init__(self):
        if self.format not in ("text", "json"):
            raise AnalysisError(
                f"lint format must be 'text' or 'json', got {self.format!r}"
            )
