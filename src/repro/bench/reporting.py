"""Text rendering of benchmark outcomes in the shape of Table 1."""

from __future__ import annotations

from repro.bench.runner import BenchmarkOutcome
from repro.utils.rationals import format_threshold as _fmt


def format_table(outcomes: list[BenchmarkOutcome],
                 title: str = "Tightness of differential thresholds") -> str:
    """Render outcomes as an aligned text table mirroring Table 1."""
    header = (
        f"{'Benchmark':<22} {'Tight':>7} {'Computed':>10} "
        f"{'Paper':>10} {'Time(s)':>8}  Shape"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    group = None
    for outcome in outcomes:
        if outcome.pair.group != group:
            group = outcome.pair.group
            lines.append(f"-- {group} --")
        mark = "ok" if outcome.matches_paper_shape else "DIFFERS"
        if outcome.cached:
            mark += " (cached)"
        lines.append(
            f"{outcome.pair.name:<22} {_fmt(outcome.pair.tight):>7} "
            f"{_fmt(outcome.computed):>10} "
            f"{_fmt(outcome.pair.paper_computed):>10} "
            f"{outcome.seconds:>8.2f}  {mark}"
        )
    tight = sum(1 for o in outcomes if o.is_tight)
    solved = sum(1 for o in outcomes if o.computed is not None)
    lines.append("-" * len(header))
    lines.append(
        f"tight {tight}/{len(outcomes)}; thresholds computed "
        f"{solved}/{len(outcomes)}"
    )
    return "\n".join(lines)


def format_markdown(outcomes: list[BenchmarkOutcome]) -> str:
    """Render outcomes as a GitHub-flavoured markdown table (the layout
    used in EXPERIMENTS.md)."""
    lines = [
        "| Benchmark | Tight | Computed | Paper tight | Paper computed "
        "| Time (s) | Shape |",
        "|---|---:|---:|---:|---:|---:|---|",
    ]
    for outcome in outcomes:
        mark = "ok" if outcome.matches_paper_shape else "DIFFERS"
        if outcome.cached:
            mark += " (cached)"
        lines.append(
            f"| {outcome.pair.name} | {_fmt(outcome.pair.tight)} "
            f"| {_fmt(outcome.computed)} | {_fmt(outcome.pair.paper_tight)} "
            f"| {_fmt(outcome.pair.paper_computed)} "
            f"| {outcome.seconds:.2f} | {mark} |"
        )
    return "\n".join(lines)


def format_csv(outcomes: list[BenchmarkOutcome]) -> str:
    """Render outcomes as CSV for downstream tooling / plotting."""
    import csv
    import io

    buffer = io.StringIO()
    fields = [
        "benchmark", "group", "tight", "computed", "paper_tight",
        "paper_computed", "is_tight", "matches_paper", "seconds",
        "job_status", "cached",
    ]
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    for outcome in outcomes:
        writer.writerow(outcome.row())
    return buffer.getvalue()
