"""LP backend performance harness — emits ``BENCH_lp.json``.

For each selected Table 1 pair the harness builds the Handelman LP
*once* (invariants + constraints + encoding) and then times every
requested backend on that same :class:`~repro.lp.model.LPModel`,
recording wall time, solver statistics (pivots, warm-start path,
refactorizations) and the objective.  Agreement is gated:

- every backend must report the same LP status;
- all exact backends (``exact``, ``exact-warm``, ``exact-dense``) must
  return **bit-identical** ``Fraction`` optima;
- float backends must match the exact optimum within
  ``float_tolerance`` (absolute + relative).

A second section benchmarks the **refutation batch**: the full witness
loop of :func:`~repro.core.refutation.refute_threshold` per pair, once
through the incremental one-encode path
(:class:`~repro.lp.dual.IncrementalLP`: one factorized basis re-solved
per witness) and once through the cold path (every witness LP solved
from scratch — the pre-incremental behaviour).  Both must produce
bit-identical certified gaps and witnesses (gated like backend
agreement); the report records factorization counts, eta/refactor
statistics and the re-solve-versus-cold speedup.

The JSON report is the repo's perf trajectory: CI runs the harness on a
small subset every push, uploads the file as an artifact, fails the
build on any disagreement, and — via :func:`compare_reports` — fails on
a >2x regression of any tracked timing against the committed baseline
snapshot (``benchmarks/BENCH_lp.baseline.json``).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import replace
from fractions import Fraction
from typing import Any, Sequence

from repro.bench.suite import SUITE, load_pair
from repro.core.diffcost import THRESHOLD_SYMBOL, DiffCostAnalyzer
from repro.errors import AnalysisError
from repro.lp.backend import (
    LP_SOLVER_REVISION,
    backend_is_exact,
    get_backend,
)
from repro.lp.model import LPModel
from repro.lp.solution import LPStatus
from repro.poly.linexpr import AffineExpr
from repro.poly.template import TemplatePolynomial

BENCH_SCHEMA_VERSION = 3

#: Default backend set: the dense seed baseline first (speedups are
#: reported relative to it), then the sparse exact solvers, then float.
DEFAULT_PERF_BACKENDS: tuple[str, ...] = (
    "exact-dense", "exact", "exact-warm", "scipy",
)

#: Pairs whose exact-dense solve stays in single-digit seconds; the
#: full suite is available with ``names=None`` / ``--names all``.
DEFAULT_PERF_PAIRS: tuple[str, ...] = (
    "simple_single", "ex2", "ex4", "dis2", "sum",
)

#: Candidate handed to the refutation benchmark.  The witness-loop work
#: is candidate-independent (every witness LP is solved either way), so
#: any value exercises the full loop; 0 keeps all Table 1 pairs valid.
REFUTE_BENCH_CANDIDATE = 0.0

#: Default pairs of the refutation-batch section: the refutation-heavy
#: rows — two-variable input boxes, so the witness loop runs 4-5 LPs —
#: plus the Fig. 1 running example, whose refutation LP is the largest.
#: Pairs with a single bounded input collapse to ~3 witnesses and
#: barely exercise the loop.
DEFAULT_REFUTE_PAIRS: tuple[str, ...] = (
    "join", "dis2", "simple_multiple", "simple_multiple_dep",
    "simple_single2",
)


def build_lp_model(name: str) -> LPModel:
    """The pair's threshold LP (paper Step 4), ready to solve."""
    matches = [pair for pair in SUITE if pair.name == name]
    if not matches:
        raise AnalysisError(f"unknown benchmark pair {name!r}")
    pair = matches[0]
    old, new = load_pair(name)
    analyzer = DiffCostAnalyzer(old, new, pair.config())
    bound = TemplatePolynomial.from_symbol(THRESHOLD_SYMBOL)
    _, _, constraints = analyzer.build_constraints(bound)
    model = analyzer.encode(constraints)
    model.minimize(AffineExpr.variable(THRESHOLD_SYMBOL))
    return model


def _objective_repr(value: Any) -> Any:
    if isinstance(value, Fraction):
        return str(value)
    return value


def _solve_timed(backend_name: str, model: LPModel,
                 repeats: int) -> dict[str, Any]:
    backend = get_backend(backend_name)
    best = None
    solution = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        solution = backend.solve(model)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    entry: dict[str, Any] = {
        "seconds": round(best, 6),
        "status": solution.status.value,
        "objective": _objective_repr(solution.objective_value),
    }
    stats = dict(solution.stats)
    if stats:
        entry["stats"] = stats
    entry["_solution"] = solution  # stripped before serialization
    return entry


def _check_agreement(row: dict[str, Any], backends: Sequence[str],
                     float_tolerance: float) -> list[str]:
    """Status/objective agreement failures for one row (empty = agree)."""
    failures: list[str] = []
    statuses = {
        name: row["backends"][name]["status"] for name in backends
    }
    if len(set(statuses.values())) > 1:
        failures.append(f"status mismatch: {statuses}")
        return failures

    exact_values: dict[str, Fraction] = {}
    float_values: dict[str, float] = {}
    for name in backends:
        solution = row["backends"][name]["_solution"]
        if solution.status is not LPStatus.OPTIMAL:
            continue
        if solution.objective_value is None:
            continue
        if backend_is_exact(name):
            exact_values[name] = solution.objective_value
        else:
            float_values[name] = float(solution.objective_value)

    if len(set(exact_values.values())) > 1:
        failures.append(
            "exact backends disagree: "
            + str({k: str(v) for k, v in exact_values.items()})
        )
    if exact_values and float_values:
        reference = next(iter(exact_values.values()))
        bound = float_tolerance * (1 + abs(float(reference)))
        for name, value in float_values.items():
            if abs(value - float(reference)) > bound:
                failures.append(
                    f"{name} objective {value} vs exact {reference} "
                    f"(tolerance {bound})"
                )
    return failures


def _fold_phase_times(target: dict[str, float], stats: dict[str, Any]) -> None:
    """Accumulate a stats dict's ``time_*`` entries into ``target``
    (keyed by phase name, ``time_`` prefix stripped)."""
    for key, value in stats.items():
        if key.startswith("time_") and isinstance(value, (int, float)):
            phase = key[len("time_"):]
            target[phase] = target.get(phase, 0.0) + float(value)


def build_profile(report: dict[str, Any]) -> dict[str, Any]:
    """The ``profile`` section: exact-solve wall time attributed to
    named solver phases (pricing, ratio test, basis update, ftran/btran,
    eta pushes, refactorization, rational certification, float
    warm-start stage), aggregated per backend across all rows, plus the
    two refutation-batch variants.

    ``accounted_fraction`` divides the phase sum by the tracked wall
    seconds of the same unit.  Phase regions are disjoint by
    construction, so the fraction is ≤ 1 up to timer overhead and the
    untimed residue (model intake, Fraction conversions, solution
    extraction); with ``repeats > 1`` the tracked time is best-of while
    phases come from the last repeat, so treat the fraction as
    approximate there (CI runs ``repeats=1``).
    """
    phases: dict[str, dict[str, float]] = {}
    tracked: dict[str, float] = {}
    for row in report.get("rows", []):
        for name, entry in row.get("backends", {}).items():
            stats = entry.get("stats", {})
            if not any(key.startswith("time_") for key in stats):
                continue  # backend without phase timers (dense, scipy)
            _fold_phase_times(phases.setdefault(name, {}), stats)
            tracked[name] = tracked.get(name, 0.0) + entry["seconds"]
    refutation = report.get("refutation")
    if refutation:
        for row in refutation.get("rows", []):
            for variant in ("incremental", "cold"):
                entry = row.get(variant)
                if not entry or not any(
                        key.startswith("time_") for key in entry):
                    continue
                unit = f"refutation:{variant}"
                _fold_phase_times(phases.setdefault(unit, {}), entry)
                tracked[unit] = tracked.get(unit, 0.0) + entry["seconds"]
    profile: dict[str, Any] = {
        "phases": {
            unit: {phase: round(value, 6)
                   for phase, value in sorted(unit_phases.items())}
            for unit, unit_phases in sorted(phases.items())
        },
        "tracked_seconds": {
            unit: round(seconds, 6) for unit, seconds in sorted(
                tracked.items())
        },
        "accounted_fraction": {
            unit: round(sum(phases[unit].values()) / tracked[unit], 3)
            for unit in sorted(phases)
            if tracked.get(unit, 0.0) > 0
        },
    }
    return profile


#: Per-variant counters surfaced in each refutation-batch row.
_REFUTE_STAT_KEYS = (
    "solves", "factorizations", "refactorizations", "pivots",
    "eta_pivots", "max_eta", "resolves", "dual_resolves",
    "float_factorizations",
)


def _refute_variant(old, new, config) -> dict[str, Any]:
    start = time.perf_counter()
    from repro.core.refutation import refute_threshold

    result = refute_threshold(old, new, REFUTE_BENCH_CANDIDATE, config)
    elapsed = time.perf_counter() - start
    entry: dict[str, Any] = {"seconds": round(elapsed, 6)}
    for key in _REFUTE_STAT_KEYS:
        value = result.lp_stats.get(key)
        if value:
            entry[key] = value
    for key, value in result.lp_stats.items():
        if key.startswith("time_") and isinstance(value, float) and value > 0:
            entry[key] = round(value, 6)
    entry["_result"] = result  # stripped before serialization
    return entry


def run_refutation_batch(names: Sequence[str] | None = None
                         ) -> dict[str, Any]:
    """Benchmark the refutation witness loop, incremental vs cold.

    Runs :func:`~repro.core.refutation.refute_threshold` per pair twice
    — ``lp_incremental=True`` (one encode, one factorized basis,
    re-solves per witness) and ``lp_incremental=False`` (per-witness
    cold solves, the PR 3 behaviour) — and gates on bit-identical
    certified gaps and witnesses.  The summary carries the aggregate
    exact-factorization ratio and wall-clock speedup, which is the
    number the incremental LP core is accountable for.
    """
    selected = list(names) if names else list(DEFAULT_REFUTE_PAIRS)
    rows: list[dict[str, Any]] = []
    totals = {"incremental": 0.0, "cold": 0.0}
    factorizations = {"incremental": 0, "cold": 0}
    disagreements = 0
    for pair_name in selected:
        matches = [pair for pair in SUITE if pair.name == pair_name]
        if not matches:
            raise AnalysisError(f"unknown benchmark pair {pair_name!r}")
        pair = matches[0]
        old, new = load_pair(pair_name)
        base = pair.config("exact-warm")
        row: dict[str, Any] = {"pair": pair_name}
        for variant, incremental in (("incremental", True), ("cold", False)):
            config = replace(base, lp_incremental=incremental)
            entry = _refute_variant(old, new, config)
            row[variant] = entry
            totals[variant] += entry["seconds"]
            factorizations[variant] += entry.get("factorizations", 0)

        warm = row["incremental"].pop("_result")
        cold = row["cold"].pop("_result")
        gap = warm.guaranteed_difference
        row["witnesses"] = warm.lp_stats.get("solves", 0)
        row["gap"] = None if gap is None else str(gap)
        failures = []
        if warm.guaranteed_difference != cold.guaranteed_difference:
            failures.append(
                f"gap mismatch: incremental {warm.guaranteed_difference} "
                f"vs cold {cold.guaranteed_difference}"
            )
        if warm.witness_input != cold.witness_input:
            failures.append(
                f"witness mismatch: incremental {warm.witness_input} "
                f"vs cold {cold.witness_input}"
            )
        row["agree"] = not failures
        if failures:
            row["disagreements"] = failures
            disagreements += 1
        cold_seconds = row["cold"]["seconds"]
        if row["incremental"]["seconds"] > 0:
            row["speedup"] = round(
                cold_seconds / row["incremental"]["seconds"], 2
            )
        rows.append(row)

    summary: dict[str, Any] = {
        "seconds_total": {k: round(v, 6) for k, v in totals.items()},
        "factorizations_total": dict(factorizations),
        "disagreements": disagreements,
    }
    if factorizations["incremental"] > 0:
        summary["factorization_ratio"] = round(
            factorizations["cold"] / factorizations["incremental"], 2
        )
    if totals["incremental"] > 0:
        summary["speedup"] = round(
            totals["cold"] / totals["incremental"], 2
        )
    return {"rows": rows, "summary": summary}


def run_lp_perf(names: Sequence[str] | None = None,
                backends: Sequence[str] = DEFAULT_PERF_BACKENDS,
                repeats: int = 1,
                float_tolerance: float = 1e-4,
                refutation: bool = True) -> dict[str, Any]:
    """Time every backend on every pair's LP; returns the report dict."""
    selected = list(names) if names else list(DEFAULT_PERF_PAIRS)
    rows: list[dict[str, Any]] = []
    totals: dict[str, float] = {name: 0.0 for name in backends}
    path_counts: dict[str, int] = {}
    disagreements = 0

    for pair_name in selected:
        model = build_lp_model(pair_name)
        row: dict[str, Any] = {
            "pair": pair_name,
            "lp_variables": model.num_variables,
            "lp_constraints": model.num_constraints,
            "backends": {},
        }
        for backend_name in backends:
            entry = _solve_timed(backend_name, model, repeats)
            row["backends"][backend_name] = entry
            totals[backend_name] += entry["seconds"]
            path = entry.get("stats", {}).get("path")
            if path:
                path_counts[path] = path_counts.get(path, 0) + 1
        failures = _check_agreement(row, backends, float_tolerance)
        row["agree"] = not failures
        if failures:
            row["disagreements"] = failures
            disagreements += 1
        for entry in row["backends"].values():
            entry.pop("_solution", None)
        rows.append(row)

    summary: dict[str, Any] = {
        "seconds_total": {k: round(v, 6) for k, v in totals.items()},
        "disagreements": disagreements,
        "warm_start_paths": path_counts,
    }
    baseline = "exact-dense"
    if baseline in totals and totals[baseline] > 0:
        summary["speedup_vs_dense"] = {
            name: round(totals[baseline] / seconds, 2)
            for name, seconds in totals.items()
            if name != baseline and seconds > 0
        }
    report: dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "generated_by": "repro-diffcost perf",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "lp_solver_revision": LP_SOLVER_REVISION,
        "backends": list(backends),
        "repeats": repeats,
        "float_tolerance": float_tolerance,
        "rows": rows,
        "summary": summary,
    }
    if refutation:
        # An explicit pair selection drives both sections; the defaults
        # differ (the backend matrix wants cheap-for-dense pairs, the
        # refutation batch wants witness-heavy ones).
        section = run_refutation_batch(names=list(names) if names else None)
        report["refutation"] = section
        # A gap/witness divergence between the incremental and cold
        # loops is a solver bug exactly like a backend disagreement.
        summary["disagreements"] += section["summary"]["disagreements"]
    report["profile"] = build_profile(report)
    return report


def write_bench_json(report: dict[str, Any], path: str) -> None:
    """Write the report, stable key order, trailing newline."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: Timings shorter than this are dominated by noise and exempt from the
#: baseline regression gate.
_COMPARE_MIN_SECONDS = 0.05


def _tracked_timings(report: dict[str, Any]) -> dict[str, float]:
    """name -> seconds for every timing the baseline gate tracks."""
    tracked: dict[str, float] = {}
    for name, seconds in report["summary"]["seconds_total"].items():
        tracked[f"backend:{name}"] = seconds
    refutation = report.get("refutation")
    if refutation:
        for variant, seconds in (
                refutation["summary"]["seconds_total"].items()):
            tracked[f"refutation:{variant}"] = seconds
        for row in refutation["rows"]:
            tracked[f"refutation:{row['pair']}:incremental"] = (
                row["incremental"]["seconds"]
            )
    return tracked


def compare_reports(baseline: dict[str, Any], current: dict[str, Any],
                    max_ratio: float = 2.0) -> list[str]:
    """Regressions of ``current`` against a ``BENCH_lp.json`` baseline.

    Returns human-readable failure strings (empty = pass):

    - any disagreement in the current report (backends or the
      incremental/cold refutation loops);
    - any tracked timing (per-backend totals, refutation totals,
      per-pair incremental refutation) slower than ``max_ratio`` times
      the baseline.  Sub-``50ms`` timings are exempt — they measure
      interpreter noise, not the solver.  Entries present on only one
      side (new pairs, new backends) are skipped: the gate tracks
      trajectory, not schema.
    """
    failures: list[str] = []
    if current["summary"]["disagreements"]:
        failures.append(
            f"current report has "
            f"{current['summary']['disagreements']} disagreement(s)"
        )
    base_timings = _tracked_timings(baseline)
    for name, seconds in _tracked_timings(current).items():
        reference = base_timings.get(name)
        if reference is None:
            continue
        if seconds <= _COMPARE_MIN_SECONDS:
            continue
        floor = max(reference, _COMPARE_MIN_SECONDS)
        if seconds > max_ratio * floor:
            failures.append(
                f"timing regression: {name} {seconds:.3f}s vs baseline "
                f"{reference:.3f}s (> {max_ratio:.1f}x)"
            )
    return failures


def format_perf_table(report: dict[str, Any]) -> str:
    """Human-readable rendering of a perf report."""
    backends = report["backends"]
    header = ["pair"] + [f"{name} (s)" for name in backends] + ["agree"]
    lines = ["  ".join(f"{h:>16}" for h in header)]
    for row in report["rows"]:
        cells = [f"{row['pair']:>16}"]
        for name in backends:
            cells.append(f"{row['backends'][name]['seconds']:>16.4f}")
        cells.append(f"{'yes' if row['agree'] else 'NO':>16}")
        lines.append("  ".join(cells))
    summary = report["summary"]
    lines.append("")
    lines.append(f"totals: {summary['seconds_total']}")
    if "speedup_vs_dense" in summary:
        lines.append(f"speedup vs exact-dense: {summary['speedup_vs_dense']}")
    if summary["warm_start_paths"]:
        lines.append(f"warm-start paths: {summary['warm_start_paths']}")
    refutation = report.get("refutation")
    if refutation:
        lines.append("")
        lines.append("refutation batch (incremental vs cold):")
        header = ["pair", "wit", "inc (s)", "cold (s)", "fact i/c", "agree"]
        lines.append("  ".join(f"{h:>12}" for h in header))
        for row in refutation["rows"]:
            cells = [
                f"{row['pair']:>12}",
                f"{row['witnesses']:>12}",
                f"{row['incremental']['seconds']:>12.4f}",
                f"{row['cold']['seconds']:>12.4f}",
                f"{row['incremental'].get('factorizations', 0):>5}/"
                f"{row['cold'].get('factorizations', 0):<6}",
                f"{'yes' if row['agree'] else 'NO':>12}",
            ]
            lines.append("  ".join(cells))
        rsum = refutation["summary"]
        lines.append(
            f"refutation totals: {rsum['seconds_total']}; factorizations "
            f"{rsum['factorizations_total']}"
            + (f"; {rsum['factorization_ratio']}x fewer factorizations"
               if "factorization_ratio" in rsum else "")
            + (f"; {rsum['speedup']}x wall speedup"
               if "speedup" in rsum else "")
        )
    profile = report.get("profile")
    if profile and profile["phases"]:
        lines.append("")
        lines.append("phase profile (seconds; fraction of tracked wall):")
        for unit, unit_phases in profile["phases"].items():
            fraction = profile["accounted_fraction"].get(unit)
            ranked = sorted(unit_phases.items(), key=lambda kv: -kv[1])
            detail = ", ".join(f"{phase}={value:.4f}"
                               for phase, value in ranked)
            suffix = f" ({fraction:.0%} accounted)" if fraction else ""
            lines.append(f"  {unit}: {detail}{suffix}")
    lines.append(f"disagreements: {summary['disagreements']}")
    return "\n".join(lines)
