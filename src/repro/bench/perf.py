"""LP backend performance harness — emits ``BENCH_lp.json``.

For each selected Table 1 pair the harness builds the Handelman LP
*once* (invariants + constraints + encoding) and then times every
requested backend on that same :class:`~repro.lp.model.LPModel`,
recording wall time, solver statistics (pivots, warm-start path,
refactorizations) and the objective.  Agreement is gated:

- every backend must report the same LP status;
- all exact backends (``exact``, ``exact-warm``, ``exact-dense``) must
  return **bit-identical** ``Fraction`` optima;
- float backends must match the exact optimum within
  ``float_tolerance`` (absolute + relative).

The JSON report is the repo's perf trajectory: CI runs the harness on a
small subset every push and uploads the file as an artifact, failing
the build on any disagreement.
"""

from __future__ import annotations

import json
import platform
import time
from fractions import Fraction
from typing import Any, Sequence

from repro.bench.suite import SUITE, load_pair
from repro.core.diffcost import THRESHOLD_SYMBOL, DiffCostAnalyzer
from repro.errors import AnalysisError
from repro.lp.backend import (
    LP_SOLVER_REVISION,
    backend_is_exact,
    get_backend,
)
from repro.lp.model import LPModel
from repro.lp.solution import LPStatus
from repro.poly.linexpr import AffineExpr
from repro.poly.template import TemplatePolynomial

BENCH_SCHEMA_VERSION = 1

#: Default backend set: the dense seed baseline first (speedups are
#: reported relative to it), then the sparse exact solvers, then float.
DEFAULT_PERF_BACKENDS: tuple[str, ...] = (
    "exact-dense", "exact", "exact-warm", "scipy",
)

#: Pairs whose exact-dense solve stays in single-digit seconds; the
#: full suite is available with ``names=None`` / ``--names all``.
DEFAULT_PERF_PAIRS: tuple[str, ...] = (
    "simple_single", "ex2", "ex4", "dis2", "sum",
)


def build_lp_model(name: str) -> LPModel:
    """The pair's threshold LP (paper Step 4), ready to solve."""
    matches = [pair for pair in SUITE if pair.name == name]
    if not matches:
        raise AnalysisError(f"unknown benchmark pair {name!r}")
    pair = matches[0]
    old, new = load_pair(name)
    analyzer = DiffCostAnalyzer(old, new, pair.config())
    bound = TemplatePolynomial.from_symbol(THRESHOLD_SYMBOL)
    _, _, constraints = analyzer.build_constraints(bound)
    model = analyzer.encode(constraints)
    model.minimize(AffineExpr.variable(THRESHOLD_SYMBOL))
    return model


def _objective_repr(value: Any) -> Any:
    if isinstance(value, Fraction):
        return str(value)
    return value


def _solve_timed(backend_name: str, model: LPModel,
                 repeats: int) -> dict[str, Any]:
    backend = get_backend(backend_name)
    best = None
    solution = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        solution = backend.solve(model)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    entry: dict[str, Any] = {
        "seconds": round(best, 6),
        "status": solution.status.value,
        "objective": _objective_repr(solution.objective_value),
    }
    stats = dict(solution.stats)
    if stats:
        entry["stats"] = stats
    entry["_solution"] = solution  # stripped before serialization
    return entry


def _check_agreement(row: dict[str, Any], backends: Sequence[str],
                     float_tolerance: float) -> list[str]:
    """Status/objective agreement failures for one row (empty = agree)."""
    failures: list[str] = []
    statuses = {
        name: row["backends"][name]["status"] for name in backends
    }
    if len(set(statuses.values())) > 1:
        failures.append(f"status mismatch: {statuses}")
        return failures

    exact_values: dict[str, Fraction] = {}
    float_values: dict[str, float] = {}
    for name in backends:
        solution = row["backends"][name]["_solution"]
        if solution.status is not LPStatus.OPTIMAL:
            continue
        if solution.objective_value is None:
            continue
        if backend_is_exact(name):
            exact_values[name] = solution.objective_value
        else:
            float_values[name] = float(solution.objective_value)

    if len(set(exact_values.values())) > 1:
        failures.append(
            "exact backends disagree: "
            + str({k: str(v) for k, v in exact_values.items()})
        )
    if exact_values and float_values:
        reference = next(iter(exact_values.values()))
        bound = float_tolerance * (1 + abs(float(reference)))
        for name, value in float_values.items():
            if abs(value - float(reference)) > bound:
                failures.append(
                    f"{name} objective {value} vs exact {reference} "
                    f"(tolerance {bound})"
                )
    return failures


def run_lp_perf(names: Sequence[str] | None = None,
                backends: Sequence[str] = DEFAULT_PERF_BACKENDS,
                repeats: int = 1,
                float_tolerance: float = 1e-4) -> dict[str, Any]:
    """Time every backend on every pair's LP; returns the report dict."""
    selected = list(names) if names else list(DEFAULT_PERF_PAIRS)
    rows: list[dict[str, Any]] = []
    totals: dict[str, float] = {name: 0.0 for name in backends}
    path_counts: dict[str, int] = {}
    disagreements = 0

    for pair_name in selected:
        model = build_lp_model(pair_name)
        row: dict[str, Any] = {
            "pair": pair_name,
            "lp_variables": model.num_variables,
            "lp_constraints": model.num_constraints,
            "backends": {},
        }
        for backend_name in backends:
            entry = _solve_timed(backend_name, model, repeats)
            row["backends"][backend_name] = entry
            totals[backend_name] += entry["seconds"]
            path = entry.get("stats", {}).get("path")
            if path:
                path_counts[path] = path_counts.get(path, 0) + 1
        failures = _check_agreement(row, backends, float_tolerance)
        row["agree"] = not failures
        if failures:
            row["disagreements"] = failures
            disagreements += 1
        for entry in row["backends"].values():
            entry.pop("_solution", None)
        rows.append(row)

    summary: dict[str, Any] = {
        "seconds_total": {k: round(v, 6) for k, v in totals.items()},
        "disagreements": disagreements,
        "warm_start_paths": path_counts,
    }
    baseline = "exact-dense"
    if baseline in totals and totals[baseline] > 0:
        summary["speedup_vs_dense"] = {
            name: round(totals[baseline] / seconds, 2)
            for name, seconds in totals.items()
            if name != baseline and seconds > 0
        }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "generated_by": "repro-diffcost perf",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "lp_solver_revision": LP_SOLVER_REVISION,
        "backends": list(backends),
        "repeats": repeats,
        "float_tolerance": float_tolerance,
        "rows": rows,
        "summary": summary,
    }


def write_bench_json(report: dict[str, Any], path: str) -> None:
    """Write the report, stable key order, trailing newline."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_perf_table(report: dict[str, Any]) -> str:
    """Human-readable rendering of a perf report."""
    backends = report["backends"]
    header = ["pair"] + [f"{name} (s)" for name in backends] + ["agree"]
    lines = ["  ".join(f"{h:>16}" for h in header)]
    for row in report["rows"]:
        cells = [f"{row['pair']:>16}"]
        for name in backends:
            cells.append(f"{row['backends'][name]['seconds']:>16.4f}")
        cells.append(f"{'yes' if row['agree'] else 'NO':>16}")
        lines.append("  ".join(cells))
    summary = report["summary"]
    lines.append("")
    lines.append(f"totals: {summary['seconds_total']}")
    if "speedup_vs_dense" in summary:
        lines.append(f"speedup vs exact-dense: {summary['speedup_vs_dense']}")
    if summary["warm_start_paths"]:
        lines.append(f"warm-start paths: {summary['warm_start_paths']}")
    lines.append(f"disagreements: {summary['disagreements']}")
    return "\n".join(lines)
