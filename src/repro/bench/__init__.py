"""The benchmark suite of the paper's evaluation (Table 1 + Fig. 1).

The 19 program pairs of Table 1 are reconstructions (see DESIGN.md §4):
the original artifacts are not available offline, so each pair was
rebuilt from the source papers' looping patterns and the paper's own
pairing recipe, calibrated to the same "Tight" thresholds under the same
``[1, 100]`` input boxes.
"""

from repro.bench.suite import (
    BenchmarkPair,
    SUITE,
    get_pair,
    load_pair,
    pairs_in_group,
)
from repro.bench.runner import (
    BenchmarkOutcome,
    SuiteInterrupted,
    run_pair,
    run_suite,
)
from repro.bench.reporting import format_csv, format_markdown, format_table
from repro.bench.perf import (
    DEFAULT_PERF_BACKENDS,
    DEFAULT_PERF_PAIRS,
    build_lp_model,
    format_perf_table,
    run_lp_perf,
    write_bench_json,
)

__all__ = [
    "DEFAULT_PERF_BACKENDS",
    "DEFAULT_PERF_PAIRS",
    "build_lp_model",
    "format_perf_table",
    "run_lp_perf",
    "write_bench_json",
    "BenchmarkPair",
    "SUITE",
    "get_pair",
    "load_pair",
    "pairs_in_group",
    "BenchmarkOutcome",
    "SuiteInterrupted",
    "run_pair",
    "run_suite",
    "format_table",
    "format_markdown",
    "format_csv",
]
