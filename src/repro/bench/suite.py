"""Registry of the Table 1 benchmark pairs and the Fig. 1 running example.

Each entry records the paper's reported numbers (``paper_tight`` /
``paper_computed``; ``None`` for the paper's ✗) alongside our
reconstruction's ground-truth tight threshold (``tight``, determined
analytically from the program pair and verified empirically by the test
suite on shrunk input boxes) and per-pair analysis configuration
(``degree`` / ``max_products`` — the 'nested' pair needs 3/3, like the
paper says).
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import resources

from repro.config import AnalysisConfig
from repro.lang import load_program
from repro.lang.lower import LoweredProgram

GROUP_SPEED = "Gulwani et al. [23]"
GROUP_REACHABILITY = "Gulwani and Zuleger [25]"
GROUP_SEMDIFF = "Partush and Yahav [40, 41]"
GROUP_RUNNING = "Fig. 1 running example"


@dataclass(frozen=True)
class BenchmarkPair:
    """One Table 1 row: a program pair plus expected numbers."""

    name: str
    group: str
    tight: int | None         # ground-truth tight threshold of OUR pair
    paper_tight: float | None
    paper_computed: float | None   # None encodes the paper's ✗
    degree: int = 2
    max_products: int = 2
    expect_failure: bool = False   # our expected ✗
    notes: str = ""

    def config(self, lp_backend: str = "scipy") -> AnalysisConfig:
        """The analysis configuration for this pair."""
        return AnalysisConfig(
            degree=self.degree,
            max_products=self.max_products,
            lp_backend=lp_backend,
        )


SUITE: list[BenchmarkPair] = [
    # ---- Fig. 1 (the running example; not a Table 1 row) ----
    BenchmarkPair(
        name="join", group=GROUP_RUNNING, tight=10000,
        paper_tight=10000, paper_computed=10000,
        notes="loop interchange plus f's cost changing from 1 to 2",
    ),
    # ---- Group 1: SPEED benchmarks [23] ----
    BenchmarkPair(
        name="dis1", group=GROUP_SPEED, tight=100,
        paper_tight=100, paper_computed=100,
    ),
    BenchmarkPair(
        name="dis2", group=GROUP_SPEED, tight=100,
        paper_tight=100, paper_computed=100,
        notes="initial ordering assumption a <= b (as in the paper)",
    ),
    BenchmarkPair(
        name="nested_multiple", group=GROUP_SPEED, tight=100,
        paper_tight=100, paper_computed=100,
        notes="amortized inner counter shared across outer iterations",
    ),
    BenchmarkPair(
        name="nested_multiple_dep", group=GROUP_SPEED, tight=9900,
        paper_tight=9900, paper_computed=9900,
        notes="paper needed manual invariant strengthening (*)",
    ),
    BenchmarkPair(
        name="nested_single", group=GROUP_SPEED, tight=101,
        paper_tight=101, paper_computed=101,
    ),
    BenchmarkPair(
        name="sequential_single", group=GROUP_SPEED, tight=100,
        paper_tight=100, paper_computed=100,
    ),
    BenchmarkPair(
        name="simple_multiple", group=GROUP_SPEED, tight=100,
        paper_tight=100, paper_computed=100,
    ),
    BenchmarkPair(
        name="simple_multiple_dep", group=GROUP_SPEED, tight=10000,
        paper_tight=10000, paper_computed=10100,
        notes="non-affine assignment q = n*m; paper lost 100 here",
    ),
    BenchmarkPair(
        name="simple_single", group=GROUP_SPEED, tight=100,
        paper_tight=100, paper_computed=100,
    ),
    BenchmarkPair(
        name="simple_single2", group=GROUP_SPEED, tight=99,
        paper_tight=100, paper_computed=197,
        notes="trip count max(n - m, 0): disjunctive, imprecise bound expected",
    ),
    # ---- Group 2: reachability-bound benchmarks [25] ----
    BenchmarkPair(
        name="ex2", group=GROUP_REACHABILITY, tight=99,
        paper_tight=99, paper_computed=99.94,
    ),
    BenchmarkPair(
        name="ex4", group=GROUP_REACHABILITY, tight=201,
        paper_tight=201, paper_computed=201,
    ),
    BenchmarkPair(
        name="ex5", group=GROUP_REACHABILITY, tight=100,
        paper_tight=100, paper_computed=None, expect_failure=True,
        notes="two-rate loop over unbounded n: no polynomial PF exists",
    ),
    BenchmarkPair(
        name="ex6", group=GROUP_REACHABILITY, tight=99,
        paper_tight=99, paper_computed=99.01,
    ),
    BenchmarkPair(
        name="ex7", group=GROUP_REACHABILITY, tight=1,
        paper_tight=1, paper_computed=None, expect_failure=True,
        notes="difference exactly 1 but disjunctive cost profile",
    ),
    # ---- Group 3: semantic-differencing benchmarks [40, 41] ----
    BenchmarkPair(
        name="ddec", group=GROUP_SEMDIFF, tight=0,
        paper_tight=0, paper_computed=73896.4,
        notes="equivalent pair around min(n, m): large over-approximation",
    ),
    BenchmarkPair(
        name="ddec_modified", group=GROUP_SEMDIFF, tight=0,
        paper_tight=0, paper_computed=0,
        notes="up-counting vs down-counting loop, not alignable",
    ),
    BenchmarkPair(
        name="nested", group=GROUP_SEMDIFF, tight=0,
        paper_tight=0, paper_computed=0, degree=3, max_products=3,
        notes="cubic cost: d = K = 3 (as in the paper, *)",
    ),
    BenchmarkPair(
        name="sum", group=GROUP_SEMDIFF, tight=0,
        paper_tight=0, paper_computed=0.5,
        notes="shifted loop counter",
    ),
]

_BY_NAME = {pair.name: pair for pair in SUITE}

# Fig. 1 join pair, kept as source text here because the paper prints it
# in full (the .imp files directory holds the Table 1 programs).
JOIN_OLD_SOURCE = """
# Fig. 1 (left): the old version of join; f costs 1 per pair.
proc join(lenA, lenB) {
  assume(1 <= lenA && lenA <= 100);
  assume(1 <= lenB && lenB <= 100);
  var i = 0;
  var j = 0;
  while (i < lenA) {
    j = 0;
    while (j < lenB) {
      tick(1);          # f(A[i], B[j], cost)
      j = j + 1;
    }
    i = i + 1;
  }
}
"""

JOIN_NEW_SOURCE = """
# Fig. 1 (right): loops interchanged and f now costs 2 per pair.
proc join(lenA, lenB) {
  assume(1 <= lenA && lenA <= 100);
  assume(1 <= lenB && lenB <= 100);
  var i = 0;
  var j = 0;
  while (i < lenB) {
    j = 0;
    while (j < lenA) {
      tick(2);          # f(A[j], B[i], cost)
      j = j + 1;
    }
    i = i + 1;
  }
}
"""


def get_pair(name: str) -> BenchmarkPair:
    """Look up a benchmark by name."""
    if name not in _BY_NAME:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_BY_NAME)}"
        )
    return _BY_NAME[name]


def pairs_in_group(group: str) -> list[BenchmarkPair]:
    """All benchmarks of one source group."""
    return [pair for pair in SUITE if pair.group == group]


def _read_source(filename: str) -> str:
    package = resources.files("repro.bench") / "programs" / filename
    return package.read_text()


def pair_sources(name: str) -> tuple[str, str]:
    """The ``(old, new)`` `imp` source texts of a benchmark.

    This is what the parallel engine ships to worker processes: source
    text crosses process boundaries, lowered programs do not.
    """
    pair = get_pair(name)
    if pair.name == "join":
        return JOIN_OLD_SOURCE, JOIN_NEW_SOURCE
    return _read_source(f"{name}_old.imp"), _read_source(f"{name}_new.imp")


def load_pair(name: str) -> tuple[LoweredProgram, LoweredProgram]:
    """Load ``(old, new)`` lowered programs for a benchmark."""
    old_source, new_source = pair_sources(name)
    old = load_program(old_source, name=f"{name}_old")
    new = load_program(new_source, name=f"{name}_new")
    return old, new
