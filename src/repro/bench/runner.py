"""Running the benchmark suite end-to-end (regenerates Table 1)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.suite import SUITE, BenchmarkPair, load_pair
from repro.core.diffcost import DiffCostAnalyzer
from repro.core.results import DiffCostResult


@dataclass
class BenchmarkOutcome:
    """One Table 1 row as measured by this reproduction."""

    pair: BenchmarkPair
    result: DiffCostResult
    seconds: float
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def computed(self) -> float | None:
        """The computed threshold (``None`` for ✗)."""
        if not self.result.is_threshold:
            return None
        return float(self.result.threshold)

    @property
    def is_tight(self) -> bool:
        """Tight in the paper's sense: for integer-valued programs a
        computed threshold within 1 of the true maximum is tight
        (Section 6's discussion of Ex2/Ex4/sum)."""
        if self.computed is None or self.pair.tight is None:
            return False
        return self.computed < self.pair.tight + 1

    @property
    def matches_paper_shape(self) -> bool:
        """Did we reproduce the qualitative outcome of the paper's row?

        Success/failure must agree; when the paper was tight we must be
        tight; when the paper over-approximated, any sound threshold
        (possibly tight — reconstructions can differ) is accepted.
        """
        paper_failed = self.pair.paper_computed is None
        we_failed = self.computed is None
        if paper_failed or we_failed:
            return paper_failed == we_failed
        paper_was_tight = self.pair.paper_computed < self.pair.paper_tight + 1
        if paper_was_tight:
            return self.is_tight
        # Sound, possibly loose (reconstructions can be easier or harder
        # than the originals); 1e-4 absorbs float-LP noise.
        return self.computed >= self.pair.tight - 1e-4

    def row(self) -> dict:
        """A plain-dict rendering for reporting."""
        return {
            "benchmark": self.pair.name,
            "group": self.pair.group,
            "tight": self.pair.tight,
            "computed": self.computed,
            "paper_tight": self.pair.paper_tight,
            "paper_computed": self.pair.paper_computed,
            "is_tight": self.is_tight,
            "matches_paper": self.matches_paper_shape,
            "seconds": round(self.seconds, 2),
        }


def run_pair(pair: BenchmarkPair, lp_backend: str = "scipy") -> BenchmarkOutcome:
    """Analyze one benchmark pair and time it."""
    old, new = load_pair(pair.name)
    start = time.perf_counter()
    analyzer = DiffCostAnalyzer(old, new, pair.config(lp_backend))
    result = analyzer.compute_threshold()
    elapsed = time.perf_counter() - start
    return BenchmarkOutcome(pair, result, elapsed, result.timings)


def run_suite(names: list[str] | None = None,
              lp_backend: str = "scipy",
              include_running_example: bool = True) -> list[BenchmarkOutcome]:
    """Run the whole suite (or a named subset) and collect outcomes."""
    outcomes: list[BenchmarkOutcome] = []
    for pair in SUITE:
        if names is not None and pair.name not in names:
            continue
        if not include_running_example and pair.group == "Fig. 1 running example":
            continue
        outcomes.append(run_pair(pair, lp_backend))
    return outcomes
