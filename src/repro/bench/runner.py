"""Running the benchmark suite end-to-end (regenerates Table 1).

Suite runs execute through the parallel engine
(:mod:`repro.engine`): each Table 1 row becomes an
:class:`~repro.engine.jobs.AnalysisJob`, so ``jobs > 1`` fans the rows
out to a process pool and a result cache makes re-runs incremental.
``jobs == 1`` runs inline and is byte-identical to the historical
sequential path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction

from repro.bench.suite import SUITE, BenchmarkPair, load_pair, pair_sources
from repro.core.diffcost import DiffCostAnalyzer
from repro.core.results import AnalysisStatus, DiffCostResult


class SuiteInterrupted(KeyboardInterrupt):
    """A suite run was interrupted (SIGTERM / Ctrl-C) after some rows
    completed.

    Subclasses ``KeyboardInterrupt`` so callers that do not care still
    see interrupt semantics; callers that do (the CLI) catch it and
    flush :attr:`outcomes` — every row whose analysis finished before
    the interrupt — as a clearly-marked partial table.
    """

    def __init__(self, outcomes: list["BenchmarkOutcome"], total: int):
        super().__init__(
            f"suite interrupted after {len(outcomes)}/{total} rows"
        )
        self.outcomes = outcomes
        self.total = total


@dataclass
class BenchmarkOutcome:
    """One Table 1 row as measured by this reproduction."""

    pair: BenchmarkPair
    result: DiffCostResult
    seconds: float
    timings: dict[str, float] = field(default_factory=dict)
    #: Engine execution status ("ok" also covers a sound ✗ answer;
    #: "error"/"timeout" mean the analysis never completed).
    job_status: str = "ok"
    #: Replayed from the persistent result cache: ``seconds`` is 0 (this
    #: run did no analysis work for the row).
    cached: bool = False

    @property
    def computed(self) -> float | None:
        """The computed threshold (``None`` for ✗)."""
        if not self.result.is_threshold:
            return None
        return float(self.result.threshold)

    @property
    def is_tight(self) -> bool:
        """Tight in the paper's sense: for integer-valued programs a
        computed threshold within 1 of the true maximum is tight
        (Section 6's discussion of Ex2/Ex4/sum)."""
        if self.computed is None or self.pair.tight is None:
            return False
        return self.computed < self.pair.tight + 1

    @property
    def matches_paper_shape(self) -> bool:
        """Did we reproduce the qualitative outcome of the paper's row?

        Success/failure must agree; when the paper was tight we must be
        tight; when the paper over-approximated, any sound threshold
        (possibly tight — reconstructions can differ) is accepted.
        """
        if self.job_status != "ok":
            # The analysis never ran (worker error/timeout): that is an
            # infrastructure failure, not a reproduction of the paper's ✗.
            return False
        paper_failed = self.pair.paper_computed is None
        we_failed = self.computed is None
        if paper_failed or we_failed:
            return paper_failed == we_failed
        paper_was_tight = self.pair.paper_computed < self.pair.paper_tight + 1
        if paper_was_tight:
            return self.is_tight
        # Sound, possibly loose (reconstructions can be easier or harder
        # than the originals); 1e-4 absorbs float-LP noise.
        return self.computed >= self.pair.tight - 1e-4

    def row(self) -> dict:
        """A plain-dict rendering for reporting."""
        return {
            "benchmark": self.pair.name,
            "group": self.pair.group,
            "tight": self.pair.tight,
            "computed": self.computed,
            "paper_tight": self.pair.paper_tight,
            "paper_computed": self.pair.paper_computed,
            "is_tight": self.is_tight,
            "matches_paper": self.matches_paper_shape,
            "seconds": round(self.seconds, 2),
            "job_status": self.job_status,
            "cached": self.cached,
        }


def run_pair(pair: BenchmarkPair, lp_backend: str = "scipy") -> BenchmarkOutcome:
    """Analyze one benchmark pair and time it."""
    old, new = load_pair(pair.name)
    start = time.perf_counter()
    analyzer = DiffCostAnalyzer(old, new, pair.config(lp_backend))
    result = analyzer.compute_threshold()
    elapsed = time.perf_counter() - start
    return BenchmarkOutcome(pair, result, elapsed, result.timings)


def _suite_job(pair: BenchmarkPair, lp_backend: str):
    from repro.engine.jobs import AnalysisJob

    old_source, new_source = pair_sources(pair.name)
    return AnalysisJob(
        kind="diff",
        old_source=old_source,
        new_source=new_source,
        config=pair.config(lp_backend),
        name=pair.name,
    )


def _outcome_from_job_result(pair: BenchmarkPair, job_result) -> BenchmarkOutcome:
    """Rebuild a Table 1 row from an engine result.

    The inline execution path carries the full
    :class:`~repro.core.results.DiffCostResult` (certificates included);
    pool workers and cache hits ship only the structured fields, which
    is everything the Table 1 rendering needs.
    """
    if job_result.analysis is not None:
        result = job_result.analysis
    else:
        if job_result.status == "ok":
            status = AnalysisStatus(job_result.outcome)
            threshold = job_result.exact_threshold()
            if isinstance(threshold, float) and threshold.is_integer():
                threshold = Fraction(int(threshold))
            message = job_result.message
        else:
            status = AnalysisStatus.UNKNOWN
            threshold = None
            message = (
                f"job {job_result.status}"
                f" ({job_result.error_type}): {job_result.message}"
            )
        result = DiffCostResult(
            status=status,
            threshold=threshold,
            timings=dict(job_result.timings),
            message=message,
        )
    # Cache replays arrive with seconds == 0 (the replay cost this run
    # nothing), so Time(s) stays honest without special-casing here.
    return BenchmarkOutcome(pair, result, job_result.seconds, result.timings,
                            job_status=job_result.status,
                            cached=job_result.cached)


def run_suite(names: list[str] | None = None,
              lp_backend: str = "scipy",
              include_running_example: bool = True,
              jobs: int = 1,
              timeout: float | None = None,
              cache_dir: str | None = None,
              cache_backend: str = "dir",
              max_retries: int = 2,
              hang_timeout: float | None = None) -> list[BenchmarkOutcome]:
    """Run the whole suite (or a named subset) through the engine.

    ``jobs``, ``timeout``, ``cache_dir``, ``cache_backend``,
    ``max_retries`` and ``hang_timeout`` configure the parallel
    executor; the defaults reproduce the sequential in-process run.

    An interrupt (SIGTERM / Ctrl-C) does not discard finished rows: it
    re-raises as :class:`SuiteInterrupted` carrying the outcomes of
    every row that completed, so the caller can flush a partial table.
    """
    from repro.engine.cache import ResultCache
    from repro.engine.executor import ParallelExecutor

    selected = [
        pair for pair in SUITE
        if (names is None or pair.name in names)
        and (include_running_example
             or pair.group != "Fig. 1 running example")
    ]
    cache = (ResultCache(cache_dir, backend=cache_backend)
             if cache_dir else None)
    jobs_by_pair = [(pair, _suite_job(pair, lp_backend)) for pair in selected]
    recorded: dict[str, object] = {}
    # Context-managed so the long-lived worker pool is torn down when
    # the suite finishes rather than lingering until garbage collection.
    with ParallelExecutor(jobs=jobs, timeout=timeout, cache=cache,
                          max_retries=max_retries,
                          hang_timeout=hang_timeout) as executor:
        executor.on_result = (
            lambda result: recorded.__setitem__(result.job_key, result)
        )
        try:
            results = executor.run([job for _pair, job in jobs_by_pair])
        except KeyboardInterrupt:
            outcomes = [
                _outcome_from_job_result(pair, recorded[job.key])
                for pair, job in jobs_by_pair
                if job.key in recorded
            ]
            raise SuiteInterrupted(outcomes, len(selected)) from None
    return [
        _outcome_from_job_result(pair, job_result)
        for pair, job_result in zip(selected, results)
    ]
