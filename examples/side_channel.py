#!/usr/bin/env python3
"""Proving the absence of a cost side channel (paper §1's second
motivating application).

A password check leaks information if its running time depends on the
secret.  We model two "versions" that are really the same program run on
two different secret classes (match vs no-match), and prove the
differential threshold 0 in both directions — i.e. the cost is
secret-independent.  A leaky variant (early exit on mismatch) is then
shown to have a nonzero differential, and the refutation mode exhibits
the witness.

Run: ``python examples/side_channel.py``
"""

from repro import analyze_diffcost, load_program, refute_threshold

# Constant-time comparison: always scans the full buffer.  The `match`
# parameter abstracts the secret-dependent branch outcome per position;
# cost is identical regardless.
CONSTANT_TIME = """
proc check(length, matches) {
  assume(1 <= length && length <= 32);
  assume(0 <= matches && matches <= 32);
  var i = 0;
  var ok = 1;
  while (i < length) {
    tick(1);               # one comparison per byte, always
    if (i < matches) { skip; } else { ok = 0; }
    i = i + 1;
  }
}
"""

# Leaky comparison: exits at the first mismatch, so the number of loop
# iterations (min(length, matches + 1)) reveals the match prefix.
LEAKY = """
proc check(length, matches) {
  assume(1 <= length && length <= 32);
  assume(0 <= matches && matches <= 32);
  var i = 0;
  var ok = 1;
  while (i < length && ok > 0) {
    tick(1);
    if (i < matches) { skip; } else { ok = 0; }
    i = i + 1;
  }
}
"""


def main() -> None:
    constant = load_program(CONSTANT_TIME, name="constant_time")
    leaky = load_program(LEAKY, name="leaky")

    print("Constant-time check vs itself (secret abstracted as input):")
    result = analyze_diffcost(constant, constant)
    print(f"  threshold: {result.threshold_display} "
          "(0 in both directions => no cost side channel)")

    print("\nLeaky early-exit check vs the constant-time one:")
    result = analyze_diffcost(leaky, constant)
    print(f"  constant-time may cost up to {result.threshold_display} "
          "more than the leaky one (the leak's magnitude)")

    print("\nRefuting secret-independence of the leaky version:")
    # If the leaky check were constant-cost, 0 would be a threshold for
    # (leaky, leaky-with-different-secret).  The refuter finds inputs
    # where runs differ, certifying the channel.
    refutation = refute_threshold(
        leaky, constant, 0,
        witnesses=[{"length": 32, "matches": 0, "i": 0, "ok": 0}],
    )
    if refutation.is_refuted:
        print(f"  cost difference >= "
              f"{float(refutation.guaranteed_difference):.0f} on "
              f"{ {k: v for k, v in refutation.witness_input.items() if k in ('length', 'matches')} }")
        print("  => timing depends on the secret: side channel confirmed.")
    else:
        print(f"  refutation inconclusive: {refutation.message}")


if __name__ == "__main__":
    main()
