#!/usr/bin/env python3
"""Single-program cost bounds with precision guarantees (paper §7).

For a single program the same machinery synthesizes an upper bound φ and
a lower bound χ simultaneously, with a minimized gap p such that every
run's cost lies within p of both bounds (Theorem 7.1).  The paper notes
no other cost analysis provides such quality guarantees.

Run: ``python examples/precision_bounds.py``
"""

from repro import analyze_single_program, load_program
from repro.ts import CostSearch

DETERMINISTIC = """
proc transfer(blocks, chunk) {
  assume(1 <= blocks && blocks <= 50);
  assume(1 <= chunk && chunk <= 8);
  var b = 0;
  var c = 0;
  while (b < blocks) {
    c = 0;
    while (c < chunk) { tick(1); c = c + 1; }
    b = b + 1;
  }
}
"""

NONDETERMINISTIC = """
proc retry_loop(n) {
  assume(1 <= n && n <= 40);
  var i = 0;
  while (i < n) {
    if (*) { tick(2); } else { tick(1); }   # cache miss vs hit
    i = i + 1;
  }
}
"""


def show(name: str, source: str, probe: dict) -> None:
    program = load_program(source, name=name)
    result = analyze_single_program(program)
    print(f"{name}:")
    if not result.is_bounded:
        print(f"  {result.message}")
        return
    print(f"  precision guarantee p = "
          f"{float(result.precision):.4g} "
          "(gap between upper and lower bound on ALL inputs)")
    low, high = result.bounds_at(probe)
    shown = {k: v for k, v in probe.items() if k in program.params}
    print(f"  on input {shown}: {float(low):.4g} <= cost <= {float(high):.4g}")
    true_low, true_high = CostSearch(program.system).cost_bounds(probe)
    print(f"  exhaustive ground truth:  {true_low} <= cost <= {true_high}")
    print()


def main() -> None:
    print("Simultaneous upper/lower cost bounds (Theorem 7.1)\n")
    show("transfer (deterministic, quadratic cost)", DETERMINISTIC,
         {"blocks": 10, "chunk": 4, "b": 0, "c": 0})
    show("retry_loop (nondeterministic cost n..2n)", NONDETERMINISTIC,
         {"n": 12, "i": 0})
    print("For the deterministic program p = 0: the bounds are exact.\n"
          "For the nondeterministic one p equals the true spread n <= 40:\n"
          "no pair of bounds can be closer, and the analysis certifies\n"
          "that its bounds achieve exactly that.")


if __name__ == "__main__":
    main()
