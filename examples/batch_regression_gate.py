#!/usr/bin/env python3
"""A many-pair CI cost-regression gate on the parallel engine.

Scenario: a monorepo CI job receives revisions of several request
handlers at once.  Instead of analyzing each pair with a fresh
sequential run, the gate hands the whole directory to the engine:

- pairs are analyzed concurrently on a process pool (``--jobs``);
- the persistent result cache makes re-runs incremental — unchanged
  pairs are answered from disk without touching the LP solver;
- a pair whose default-config analysis fails is retried through the
  portfolio ladder (richer templates, exact arithmetic) before the
  gate gives up on it;
- every outcome is structured: the gate can tell "over budget" from
  "analysis says ✗" from "the job itself crashed or timed out".

Run: ``python examples/batch_regression_gate.py``
"""

import sys
import tempfile
from pathlib import Path

from repro.config import AnalysisConfig, EngineConfig
from repro.engine import (
    ParallelExecutor,
    ResultCache,
    format_batch_table,
    run_batch,
    run_portfolio,
)

# Per-pair cost-increase budgets, as a release manager would configure
# them.  The dispatcher revision is intentionally over budget.
BUDGETS = {"dispatcher": 50, "parser": 200, "renderer": 150}

DISPATCHER_V1 = """
proc dispatch(queue) {
  assume(1 <= queue && queue <= 100);
  var i = 0;
  while (i < queue) {
    tick(1);               # route one message
    i = i + 1;
  }
}
"""

# Doubles the per-message cost: difference `queue`, up to 100 > budget 50.
DISPATCHER_V2 = DISPATCHER_V1.replace("tick(1)", "tick(2)")

PARSER_V1 = """
proc parse(items, depth) {
  assume(1 <= items && items <= 100);
  assume(1 <= depth && depth <= 8);
  var i = 0;
  var d = 0;
  while (i < items) {
    d = 0;
    while (d < depth) {
      tick(1);             # descend one level
      d = d + 1;
    }
    i = i + 1;
  }
}
"""

# Adds a constant-cost validation step per item: difference `items`,
# at most 100 <= budget 200.
PARSER_V2 = """
proc parse(items, depth) {
  assume(1 <= items && items <= 100);
  assume(1 <= depth && depth <= 8);
  var i = 0;
  var d = 0;
  while (i < items) {
    tick(1);               # validate the item first
    d = 0;
    while (d < depth) {
      tick(1);             # descend one level
      d = d + 1;
    }
    i = i + 1;
  }
}
"""

RENDERER_V1 = """
proc render(rows) {
  assume(1 <= rows && rows <= 100);
  var r = 0;
  while (r < rows) {
    tick(2);
    r = r + 1;
  }
}
"""

# Down-counting rewrite with one extra pass: difference `rows`.
RENDERER_V2 = """
proc render(rows) {
  assume(1 <= rows && rows <= 100);
  var left = rows;
  while (left > 0) {
    tick(3);
    left = left - 1;
  }
}
"""


def write_pairs(directory: Path) -> None:
    pairs = {
        "dispatcher": (DISPATCHER_V1, DISPATCHER_V2),
        "parser": (PARSER_V1, PARSER_V2),
        "renderer": (RENDERER_V1, RENDERER_V2),
    }
    for name, (old, new) in pairs.items():
        (directory / f"{name}_old.imp").write_text(old)
        (directory / f"{name}_new.imp").write_text(new)


def gate(directory: Path, cache_dir: Path) -> int:
    engine = EngineConfig(jobs=4, timeout=60.0, cache_dir=str(cache_dir))
    report = run_batch(directory, config=AnalysisConfig(), engine=engine)
    print(format_batch_table(report))
    print()

    failures = 0
    # One executor — and so one long-lived worker pool — for every pair
    # that needs portfolio escalation (construction is free; workers
    # only spawn if an escalation actually runs).
    with ParallelExecutor(jobs=4, cache=ResultCache(cache_dir)) as executor:
        for result in report.results:
            budget = BUDGETS[result.name]
            if result.failed:
                print(f"GATE ✗ {result.name}: job {result.status} "
                      f"({result.error_type}) — investigate, not mergeable")
                failures += 1
            elif result.threshold is None:
                # Default config found no certificate: escalate through
                # the portfolio ladder before rejecting.
                old = (directory / f"{result.name}_old.imp").read_text()
                new = (directory / f"{result.name}_new.imp").read_text()
                portfolio = run_portfolio(old, new, result.name, executor)
                if portfolio.threshold is None:
                    print(f"GATE ✗ {result.name}: no certificate at any rung")
                    failures += 1
                elif portfolio.threshold > budget:
                    print(f"GATE ✗ {result.name}: +{portfolio.threshold:g} "
                          f"exceeds budget {budget}")
                    failures += 1
                else:
                    print(f"GATE ✓ {result.name}: +{portfolio.threshold:g} "
                          f"<= budget {budget} (after portfolio escalation)")
            elif result.threshold > budget:
                print(f"GATE ✗ {result.name}: worst-case increase "
                      f"+{result.threshold:g} exceeds budget {budget}")
                failures += 1
            else:
                print(f"GATE ✓ {result.name}: +{result.threshold:g} "
                      f"<= budget {budget}"
                      + (" (cached)" if result.cached else ""))
    return failures


def main() -> int:
    with tempfile.TemporaryDirectory() as temp:
        directory = Path(temp) / "pairs"
        directory.mkdir()
        cache_dir = Path(temp) / "cache"
        write_pairs(directory)

        print("== first run (cold cache) ==")
        failures = gate(directory, cache_dir)
        print("\n== second run (warm cache: same revisions resubmitted) ==")
        gate(directory, cache_dir)

        print(f"\n{failures} pair(s) over budget — "
              + ("blocking the merge" if failures else "all clear"))
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
