#!/usr/bin/env python3
"""Loop-bound auditing with automatic instrumentation and witnesses.

Workflow for a program with no explicit cost model:

1. instrument it automatically with the paper's benchmark recipe
   (cost 1 per loop iteration, §6) — the total cost then *is* the loop
   bound;
2. compare two revisions of the instrumented program differentially;
3. bracket the result: the analysis' threshold from above, a concrete
   executed witness from below.  When the bracket is tighter than 1 the
   threshold is proven optimal for integer costs.

Run: ``python examples/loop_bound_audit.py``
"""

from repro import analyze_diffcost
from repro.core.witness import find_difference_witness
from repro.lang import lower_program, parse_program
from repro.lang.instrument import LOOP_BOUND_MODEL, instrument
from repro.lang.typecheck import check_program

# A search routine; the revision adds a verification pass over the
# found window (an extra inner loop).  No tick() anywhere: the cost
# model is applied automatically.
V1 = """
proc scan(n, window) {
  assume(1 <= n && n <= 60);
  assume(1 <= window && window <= 10);
  var i = 0;
  while (i < n) {
    i = i + 1;
  }
}
"""

V2 = """
proc scan(n, window) {
  assume(1 <= n && n <= 60);
  assume(1 <= window && window <= 10);
  var i = 0;
  var w = 0;
  while (i < n) {
    w = 0;
    while (w < window) {      # new verification pass
      w = w + 1;
    }
    i = i + 1;
  }
}
"""


def prepare(source: str, name: str):
    ast = instrument(parse_program(source), LOOP_BOUND_MODEL)
    check_program(ast)
    return lower_program(ast, name=name)


def main() -> None:
    old = prepare(V1, "scan_v1")
    new = prepare(V2, "scan_v2")

    print("Instrumented with the loop-bound cost model "
          "(1 tick per loop iteration)...")
    result = analyze_diffcost(old, new)
    print(f"  analysis threshold (upper bound): "
          f"{result.threshold_display}")

    witness = find_difference_witness(old, new)
    print(f"  executed witness (lower bound):   {witness.difference}")
    print(f"    {witness}")

    gap = float(result.threshold) - witness.difference
    if gap < 1:
        print(f"  bracket width {gap:.4f} < 1: the threshold is provably "
              "optimal (integer costs).")
    else:
        print(f"  bracket width {gap:.2f}: the analysis over-approximates "
              "or the witness search missed the worst input.")


if __name__ == "__main__":
    main()
