#!/usr/bin/env python3
"""A code-review cost-regression gate (the paper's §1 motivation).

Scenario: a CI pipeline receives a revision of a request handler.  The
gate computes a differential cost threshold for the revision and rejects
it when the worst-case cost increase exceeds a budget.  It also shows
the symbolic-bound mode: proving an input-relative bound such as
``cost_new - cost_old <= 2 * requests`` even when inputs are unbounded.

Run: ``python examples/regression_gate.py``
"""

from repro import (
    analyze_diffcost,
    load_program,
    parse_polynomial,
    prove_symbolic_bound,
)

# A handler batching `requests` items, with a retry loop per item.  The
# revision adds a validation pass per item (cost 2 per item instead
# of 1), and restructures the retry loop — no syntactic alignment.
HANDLER_V1 = """
proc handle(requests, retries) {
  assume(1 <= requests && requests <= 64);
  assume(0 <= retries && retries <= 3);
  var i = 0;
  var r = 0;
  while (i < requests) {
    tick(1);                 # parse item
    r = 0;
    while (r < retries) {    # backend retries
      tick(1);
      r = r + 1;
    }
    i = i + 1;
  }
}
"""

HANDLER_V2 = """
proc handle(requests, retries) {
  assume(1 <= requests && requests <= 64);
  assume(0 <= retries && retries <= 3);
  var left = 0;
  var r = 0;
  left = requests;
  while (left > 0) {         # counts down: not alignable with v1
    tick(2);                 # parse + validate item
    r = retries;
    while (r > 0) {
      tick(1);
      r = r - 1;
    }
    left = left - 1;
  }
}
"""

BUDGET = 100


def main() -> None:
    old = load_program(HANDLER_V1, name="handler_v1")
    new = load_program(HANDLER_V2, name="handler_v2")

    print("Cost-regression gate: analyzing the handler revision...")
    result = analyze_diffcost(old, new)
    if not result.is_threshold:
        print(f"  gate INCONCLUSIVE: {result.message}")
        return
    threshold = result.threshold_display
    print(f"  worst-case cost increase <= {threshold}")
    print(f"  budget = {BUDGET}")
    # The revision adds 1 tick per request: max increase 64.
    if float(result.threshold) <= BUDGET:
        print("  gate PASSED: the revision stays within budget.")
    else:
        print("  gate FAILED: potential performance regression!")

    print("\nInput-relative guarantee (symbolic bound mode):")
    bound = parse_polynomial("requests")
    proof = prove_symbolic_bound(old, new, bound)
    verdict = "proved" if proof.is_proved else "NOT proved"
    print(f"  cost_new - cost_old <= {bound}: {verdict}")

    too_strong = parse_polynomial("requests - 1")
    proof2 = prove_symbolic_bound(old, new, too_strong)
    verdict2 = "proved" if proof2.is_proved else "not provable (as expected)"
    print(f"  cost_new - cost_old <= {too_strong}: {verdict2}")


if __name__ == "__main__":
    main()
