#!/usr/bin/env python3
"""Inspecting the transition-system model (paper §3 and Fig. 2).

Lowers the old `join` of Fig. 1 and prints both the textual transition
system (compare the paper's Appendix A / Fig. 2) and Graphviz dot
source.  Also demonstrates the concrete interpreter and the exhaustive
min/max cost search used as ground truth throughout the test suite.

Run: ``python examples/transition_systems.py``
"""

from repro import CostSearch, Interpreter, load_program
from repro.bench.suite import JOIN_OLD_SOURCE
from repro.ts.pretty import render_dot


def main() -> None:
    lowered = load_program(JOIN_OLD_SOURCE, name="join_old")
    system = lowered.system

    print("Transition system of the old join (compare Fig. 2):\n")
    print(system)

    print("\nGraphviz rendering (pipe into `dot -Tpng`):\n")
    print(render_dot(system))

    print("\nConcrete execution, lenA=3 lenB=4:")
    interpreter = Interpreter(system)
    run = interpreter.run({"lenA": 3, "lenB": 4, "i": 0, "j": 0})
    print(f"  {run.length} steps, cost = {run.cost} (expected 3*4 = 12)")

    print("\nExhaustive cost search over a small input box:")
    search = CostSearch(system)
    for lena in (1, 2, 3):
        for lenb in (1, 2, 3):
            low, high = search.cost_bounds(
                {"lenA": lena, "lenB": lenb, "i": 0, "j": 0}
            )
            print(f"  lenA={lena} lenB={lenb}: CostInf={low} CostSup={high}")


if __name__ == "__main__":
    main()
