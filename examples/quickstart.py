#!/usr/bin/env python3
"""Quickstart: the paper's running example (Fig. 1 / Examples 2.1-2.3).

A revision of a ``join`` procedure interchanges its loops and doubles
the per-pair cost of the operator ``f``.  The analysis computes the
tightest provable bound on the cost increase: 10000 = 100 * 100, with
the witnessing potential and anti-potential functions.

Run: ``python examples/quickstart.py``
"""

from repro import analyze_diffcost, load_program, refute_threshold

OLD = """
# Fig. 1 (left): f costs 1 per pair of elements.
proc join(lenA, lenB) {
  assume(1 <= lenA && lenA <= 100);
  assume(1 <= lenB && lenB <= 100);
  var i = 0;
  var j = 0;
  while (i < lenA) {
    j = 0;
    while (j < lenB) {
      tick(1);            # f(A[i], B[j], cost)
      j = j + 1;
    }
    i = i + 1;
  }
}
"""

NEW = """
# Fig. 1 (right): loops interchanged, f now costs 2 per pair.
proc join(lenA, lenB) {
  assume(1 <= lenA && lenA <= 100);
  assume(1 <= lenB && lenB <= 100);
  var i = 0;
  var j = 0;
  while (i < lenB) {
    j = 0;
    while (j < lenA) {
      tick(2);            # f(A[j], B[i], cost)
      j = j + 1;
    }
    i = i + 1;
  }
}
"""


def main() -> None:
    old = load_program(OLD, name="join_old")
    new = load_program(NEW, name="join_new")

    print("Analyzing the join revision (Fig. 1 of the paper)...")
    result = analyze_diffcost(old, new)
    print(f"  status:     {result.status.value}")
    print(f"  threshold:  {result.threshold_display}  (paper: 10000)")
    print(f"  LP size:    {result.lp_variables} variables, "
          f"{result.lp_constraints} constraints")
    timings = ", ".join(
        f"{name} {seconds:.2f}s" for name, seconds in result.timings.items()
    )
    print(f"  timings:    {timings}")

    print("\nWitnessing certificates (compare Example 2.2):")
    print("  " + str(result.potential_new).replace("\n", "\n  "))
    print("  " + str(result.anti_potential_old).replace("\n", "\n  "))

    print("\nRefuting t = 9999 (Example 4.4): the difference 10000 is "
          "actually attained, so no smaller threshold exists.")
    refutation = refute_threshold(old, new, 9999)
    print(f"  {refutation}")


if __name__ == "__main__":
    main()
