"""Ablation: template degree d and Handelman parameter K.

The paper fixes d = K = 2 for all benchmarks except 'nested' (3).  This
bench sweeps (d, K) on the join pair to show why: with d or K below 2
the quadratic tight certificates are inexpressible and the threshold
degrades to ~2x (19999 instead of 10000), while 3 adds LP size and
runtime without improving the already-tight threshold.
"""

import pytest

from repro import AnalysisConfig, analyze_diffcost, load_program
from repro.bench.suite import JOIN_NEW_SOURCE, JOIN_OLD_SOURCE

SWEEP = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 3)]


@pytest.fixture(scope="module")
def join_pair():
    return (
        load_program(JOIN_OLD_SOURCE, name="join_old"),
        load_program(JOIN_NEW_SOURCE, name="join_new"),
    )


@pytest.mark.parametrize("degree,max_products", SWEEP,
                         ids=[f"d{d}_K{k}" for d, k in SWEEP])
def test_degree_k_sweep(benchmark, join_pair, degree, max_products):
    old, new = join_pair
    config = AnalysisConfig(degree=degree, max_products=max_products)
    result = benchmark.pedantic(
        analyze_diffcost, args=(old, new), kwargs={"config": config},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["threshold"] = (
        result.threshold_display if result.is_threshold else "unknown"
    )
    benchmark.extra_info["lp_variables"] = result.lp_variables
    assert result.is_threshold
    if degree >= 2 and max_products >= 2:
        # Quadratic certificates exist and the relaxation finds them:
        # the threshold is tight.
        assert result.threshold_display == 10000
    else:
        # The tight certificates are genuinely quadratic.  With affine
        # templates (or K = 1 products) only looser box-scaled
        # certificates exist: the threshold degrades to ~2x.
        assert float(result.threshold) >= 19999 - 1e-3
