"""Ablation: invariant generation cost and annotation strengthening.

Table 1 marks two rows (*) where the paper manually strengthened the
invariants from Aspic/Sting.  Our generator derives the loop-bound facts
itself for the reconstructions; this bench measures the invariant phase
in isolation and shows that annotation hints (the `invariant(...)`
mechanism mirroring the paper's manual step) can substitute for the
fixpoint when provided.
"""

import pytest

from repro.bench import load_pair
from repro.invariants import generate_invariants
from repro.lang import load_program

PAIRS = ["join", "nested_single", "nested_multiple_dep", "sum"]


@pytest.mark.parametrize("name", PAIRS)
def test_invariant_generation(benchmark, name):
    old, new = load_pair(name)

    def generate_both():
        return (
            generate_invariants(old.system, hints=old.invariant_hints),
            generate_invariants(new.system, hints=new.invariant_hints),
        )

    old_inv, new_inv = benchmark.pedantic(
        generate_both, rounds=1, iterations=1, warmup_rounds=0
    )
    total = sum(len(old_inv.ineqs_at(loc)) for loc in old.system.locations)
    benchmark.extra_info["old_constraints"] = total


ANNOTATED = """
proc count(n) {
  assume(1 <= n && n <= 100);
  var i = 0;
  while (i < n) {
    invariant(i >= 0 && i <= n - 1);
    tick(1);
    i = i + 1;
  }
}
"""


def test_annotation_strengthening(benchmark):
    """Hints reach the invariant map and shortcut the fixpoint's work
    (the paper's manual-strengthening workflow, rows marked *)."""
    lowered = load_program(ANNOTATED)
    invariants = benchmark.pedantic(
        generate_invariants, args=(lowered.system,),
        kwargs={"hints": lowered.invariant_hints},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    from repro.poly.polynomial import Polynomial
    from repro.ts.guards import LinIneq

    (head_name,) = lowered.invariant_hints.keys()
    head = lowered.system.location_by_name(head_name)
    i = Polynomial.variable("i")
    n = Polynomial.variable("n")
    assert invariants.at(head).entails(LinIneq.leq(i, n - 1))
