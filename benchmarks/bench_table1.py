"""Regenerates Table 1: tightness of differential thresholds.

One benchmark per Table 1 row (19 program pairs).  Each measurement runs
the complete pipeline — invariant generation, constraint extraction,
Handelman encoding, LP solve — exactly like the paper's per-benchmark
"Time (s)" column.  ``extra_info`` records the computed threshold, the
ground-truth tight value, the paper's numbers, and whether the
qualitative shape matches.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only``
"""

import pytest

from repro.bench import SUITE, format_table, run_pair
from repro.bench.suite import GROUP_RUNNING

TABLE1_ROWS = [pair for pair in SUITE if pair.group != GROUP_RUNNING]


@pytest.mark.parametrize("pair", TABLE1_ROWS, ids=lambda p: p.name)
def test_table1_row(benchmark, pair):
    outcome = benchmark.pedantic(
        run_pair, args=(pair,), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(outcome.row())
    # Soundness: a computed threshold must dominate the tight value.
    if outcome.computed is not None and pair.tight is not None:
        assert outcome.computed >= pair.tight - 1e-4
    # Reproduction: the qualitative shape of the paper's row must hold.
    assert outcome.matches_paper_shape, (
        f"{pair.name}: computed {outcome.computed}, tight {pair.tight}, "
        f"paper computed {pair.paper_computed}"
    )


def test_table1_summary(benchmark, capsys):
    """Runs the whole table once and prints it (the paper's headline:
    tight thresholds on ~74% of the benchmarks)."""
    outcomes = benchmark.pedantic(
        lambda: [run_pair(pair) for pair in TABLE1_ROWS],
        rounds=1, iterations=1, warmup_rounds=0,
    )
    table = format_table(outcomes)
    with capsys.disabled():
        print()
        print(table)
    tight = sum(1 for outcome in outcomes if outcome.is_tight)
    solved = sum(1 for outcome in outcomes if outcome.computed is not None)
    benchmark.extra_info["tight"] = tight
    benchmark.extra_info["solved"] = solved
    # Paper: 14/19 tight, 17/19 solved.  Require at least that.
    assert tight >= 14
    assert solved >= 17
    assert all(outcome.matches_paper_shape for outcome in outcomes)
