"""Ablation: the naive two-pass baseline vs simultaneous synthesis.

Section 1 argues that computing the PF and anti-PF independently "might
lead to imprecision"; Section 8 repeats the point against adapting unary
tools.  This bench quantifies it on suite pairs: the naive threshold is
never better and is strictly worse whenever coordinating φ against χ
matters (disjunctive / relational cost).
"""

import pytest

from repro import analyze_diffcost, naive_diffcost
from repro.bench import load_pair

PAIRS = ["join", "simple_single", "ddec", "sum", "dis2"]


@pytest.mark.parametrize("name", PAIRS)
def test_simultaneous(benchmark, name):
    old, new = load_pair(name)
    result = benchmark.pedantic(
        analyze_diffcost, args=(old, new),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.is_threshold
    benchmark.extra_info["threshold"] = float(result.threshold)


@pytest.mark.parametrize("name", PAIRS)
def test_naive_baseline(benchmark, name):
    old, new = load_pair(name)
    simultaneous = analyze_diffcost(old, new)
    naive = benchmark.pedantic(
        naive_diffcost, args=(old, new),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["simultaneous"] = float(simultaneous.threshold)
    if naive.is_threshold:
        benchmark.extra_info["naive"] = float(naive.threshold)
        # The baseline is sound but never tighter.
        assert float(naive.threshold) >= float(simultaneous.threshold) - 1e-4
    else:
        benchmark.extra_info["naive"] = "unknown"


def test_naive_strictly_worse_somewhere(benchmark):
    """On ddec (min(n, m)-shaped cost) coordination matters."""
    old, new = load_pair("ddec")

    def both():
        return analyze_diffcost(old, new), naive_diffcost(old, new)

    simultaneous, naive = benchmark.pedantic(
        both, rounds=1, iterations=1, warmup_rounds=0
    )
    assert naive.is_threshold
    benchmark.extra_info["simultaneous"] = float(simultaneous.threshold)
    benchmark.extra_info["naive"] = float(naive.threshold)
    assert float(naive.threshold) > float(simultaneous.threshold) + 1
