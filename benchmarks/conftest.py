"""Shared helpers for the benchmark harness.

Every bench runs the full analysis pipeline once per measurement
(``pedantic`` with one round): the pipeline is seconds-scale, mirroring
the paper's Table 1 "Time (s)" column, so statistical repetition would
only slow the suite without changing conclusions.
"""

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with a single round/iteration."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
