"""Regenerates the Fig. 1 running example (Examples 2.1-2.3, 4.4).

- threshold synthesis for the join revision (expected 10000),
- symbolic bound lenA*lenB (Example 2.3 / Section 5),
- refutation of t = 9999 (Example 4.4),
- per-phase timing breakdown (invariants / constraints / encoding / LP).
"""

import pytest

from repro import (
    analyze_diffcost,
    load_program,
    parse_polynomial,
    prove_symbolic_bound,
    refute_threshold,
)
from repro.bench.suite import JOIN_NEW_SOURCE, JOIN_OLD_SOURCE


@pytest.fixture(scope="module")
def join_pair():
    return (
        load_program(JOIN_OLD_SOURCE, name="join_old"),
        load_program(JOIN_NEW_SOURCE, name="join_new"),
    )


def test_fig1_threshold(benchmark, join_pair):
    old, new = join_pair
    result = benchmark.pedantic(
        analyze_diffcost, args=(old, new),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.is_threshold
    assert result.threshold_display == 10000
    benchmark.extra_info["threshold"] = result.threshold_display
    benchmark.extra_info["paper"] = 10000
    benchmark.extra_info.update(
        {f"phase_{k}": round(v, 3) for k, v in result.timings.items()}
    )


def test_fig1_symbolic_bound(benchmark, join_pair):
    old, new = join_pair
    bound = parse_polynomial("lenA * lenB")
    result = benchmark.pedantic(
        prove_symbolic_bound, args=(old, new, bound),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.is_proved
    benchmark.extra_info["bound"] = str(bound)


def test_example_4_4_refutation(benchmark, join_pair):
    old, new = join_pair
    result = benchmark.pedantic(
        refute_threshold, args=(old, new, 9999),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.is_refuted
    assert float(result.guaranteed_difference) >= 10000 - 1e-4
    benchmark.extra_info["refuted_candidate"] = 9999
    benchmark.extra_info["witness"] = str(result.witness_input)
