"""Ablation: float (HiGHS) vs the exact LP backends.

The paper used Gurobi; we provide scipy-HiGHS (fast, float) plus three
exact rational solvers: the sparse revised simplex (``exact``), its
float-warm-started certified variant (``exact-warm``) and the seed's
dense tableau (``exact-dense``, the perf baseline).  All backends must
agree on the computed thresholds — exact ones bit-identically — and the
bench records the runtime gaps.  (``repro-diffcost perf`` runs the same
comparison at the LP level and emits ``BENCH_lp.json``.)
"""

import pytest

from repro import AnalysisConfig, analyze_diffcost
from repro.bench import load_pair

# Small/medium pairs where the exact backends stay reasonable.
PAIRS = ["simple_single", "ex2", "ex4", "dis2"]

BACKENDS = ["scipy", "exact", "exact-warm", "exact-dense"]


@pytest.mark.parametrize("name", PAIRS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_backend(benchmark, name, backend):
    old, new = load_pair(name)
    config = AnalysisConfig(lp_backend=backend)
    result = benchmark.pedantic(
        analyze_diffcost, args=(old, new), kwargs={"config": config},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.is_threshold
    benchmark.extra_info["threshold"] = float(result.threshold)


@pytest.mark.parametrize("name", PAIRS)
def test_backends_agree(benchmark, name):
    old, new = load_pair(name)

    def all_of_them():
        return {
            backend: analyze_diffcost(
                old, new, AnalysisConfig(lp_backend=backend)
            )
            for backend in BACKENDS
        }

    results = benchmark.pedantic(
        all_of_them, rounds=1, iterations=1, warmup_rounds=0
    )
    exact = results["exact"]
    # Exact trio: bit-identical Fractions.
    assert results["exact-warm"].threshold == exact.threshold
    assert results["exact-dense"].threshold == exact.threshold
    # Float backend: approximate agreement.
    assert float(results["scipy"].threshold) == pytest.approx(
        float(exact.threshold), abs=1e-4
    )
