"""Ablation: float (HiGHS) vs exact rational simplex LP backends.

The paper used Gurobi; we provide scipy-HiGHS (fast, float) and a pure
Python exact simplex (slow, certificate-exact).  Both must agree on the
computed thresholds; the bench records the runtime gap.
"""

import pytest

from repro import AnalysisConfig, analyze_diffcost
from repro.bench import load_pair

# Small/medium pairs where the exact backend stays reasonable.
PAIRS = ["simple_single", "ex2", "ex4", "dis2"]


@pytest.mark.parametrize("name", PAIRS)
@pytest.mark.parametrize("backend", ["scipy", "exact"])
def test_backend(benchmark, name, backend):
    old, new = load_pair(name)
    config = AnalysisConfig(lp_backend=backend)
    result = benchmark.pedantic(
        analyze_diffcost, args=(old, new), kwargs={"config": config},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.is_threshold
    benchmark.extra_info["threshold"] = float(result.threshold)


@pytest.mark.parametrize("name", PAIRS)
def test_backends_agree(benchmark, name):
    old, new = load_pair(name)

    def both():
        scipy_result = analyze_diffcost(
            old, new, AnalysisConfig(lp_backend="scipy")
        )
        exact_result = analyze_diffcost(
            old, new, AnalysisConfig(lp_backend="exact")
        )
        return scipy_result, exact_result

    scipy_result, exact_result = benchmark.pedantic(
        both, rounds=1, iterations=1, warmup_rounds=0
    )
    assert float(scipy_result.threshold) == pytest.approx(
        float(exact_result.threshold), abs=1e-4
    )
