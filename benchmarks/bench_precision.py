"""Regenerates the Section 7 experiment: single-program cost bounds with
precision guarantees, on representative programs of the suite.

For deterministic programs the gap p should be (near) 0 — the bounds are
provably exact; for nondeterministic ones p certifies the spread.
"""

import pytest

from repro import analyze_single_program
from repro.bench import load_pair


CASES = [
    # (benchmark providing the single program, which side, expected gap)
    ("join", "old", 0),                # deterministic: exact bounds
    ("sequential_single", "new", 0),   # deterministic: exact bounds
    ("simple_single", "old", 100),     # nondet branch: spread n <= 100
    ("ddec_modified", "new", 0),       # down-counting loop
]


@pytest.mark.parametrize("name,side,expected_gap", CASES,
                         ids=[f"{n}_{s}" for n, s, _ in CASES])
def test_single_program_precision(benchmark, name, side, expected_gap):
    old, new = load_pair(name)
    program = old if side == "old" else new
    result = benchmark.pedantic(
        analyze_single_program, args=(program,),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.is_bounded
    gap = float(result.precision)
    benchmark.extra_info["precision_gap"] = round(gap, 4)
    benchmark.extra_info["expected"] = expected_gap
    assert gap == pytest.approx(expected_gap, abs=1e-3)
